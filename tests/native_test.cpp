//===-- tests/native_test.cpp - Execution-backend seam & template JIT ------===//
//
// Unit and end-to-end coverage for the pluggable-backend refactor:
//
//  * the seam itself — prepare() wrapping, low() identity, the interpreter
//    backend as the portable fallback;
//  * the x86-64 template JIT — hand-built LowCode run natively, end-to-end
//    parity with the interpreter backend across tier strategies, guard
//    side exits feeding the unchanged deopt machinery (true deopt,
//    deoptless dispatch, multi-frame OSR-out from inlined frames), and
//    the injected-invalidation slow path through native guards.
//
// Native cases skip (not fail) on hosts without the backend; the seam
// cases run everywhere.
//
//===----------------------------------------------------------------------===//

#include "dispatch/context.h"
#include "dispatch/version.h"
#include "native/native.h"
#include "support/stats.h"
#include "vm/vm.h"

#include <gtest/gtest.h>

using namespace rjit;

namespace {

/// Hand-built "return the integer constant 7" LowCode.
std::unique_ptr<LowFunction> const7() {
  auto F = std::make_unique<LowFunction>();
  F->NumSlots = 1;
  F->Consts.push_back(Value::integer(7));
  LowInstr Ld;
  Ld.Op = LowOp::LoadConst;
  Ld.Dst = 0;
  Ld.B = static_cast<uint16_t>(SlotClass::Boxed);
  Ld.Imm = 0;
  F->Code.push_back(Ld);
  LowInstr Ret;
  Ret.Op = LowOp::RetLow;
  Ret.A = 0;
  F->Code.push_back(Ret);
  return F;
}

Vm::Config cfg(TierStrategy S, bool Native) {
  Vm::Config C;
  C.Strategy = S;
  C.CompileThreshold = 2;
  C.OsrThreshold = 100;
  C.NativeTier = Native;
  return C;
}

/// Runs Setup once and Driver \p Reps times under \p C; returns the last
/// value rendered.
std::string runUnder(Vm::Config C, const std::string &Setup,
                     const std::string &Driver, int Reps = 8) {
  Vm V(C);
  V.eval(Setup);
  Value R;
  for (int K = 0; K < Reps; ++K)
    R = V.eval(Driver);
  return R.show();
}

} // namespace

//===----------------------------------------------------------------------===//
// The seam

TEST(BackendSeam, InterpBackendWrapsAndRuns) {
  std::unique_ptr<LowFunction> Low = const7();
  const LowFunction *Raw = Low.get();
  std::unique_ptr<ExecutableCode> X =
      interpBackend().prepare(std::move(Low));
  ASSERT_NE(X, nullptr);
  EXPECT_STREQ(X->backendName(), "interp");
  EXPECT_EQ(X->lowPtr(), Raw) << "low() must be the identity the deopt "
                                 "runtime keys on";
  Value R = X->run({}, nullptr, nullptr);
  EXPECT_EQ(R.asIntUnchecked(), 7);
}

TEST(BackendSeam, NullBackendResolvesToInterp) {
  EXPECT_EQ(&backendOr(nullptr), &interpBackend());
}

TEST(BackendSeam, UnsupportedHostsReportNoNativeBackend) {
  // On supported hosts makeNativeBackend() must produce a backend; on
  // unsupported ones it must return null (and the Vm falls back).
  std::unique_ptr<ExecBackend> B = makeNativeBackend();
  EXPECT_EQ(B != nullptr, nativeBackendSupported());
}

//===----------------------------------------------------------------------===//
// The template JIT

TEST(NativeJit, RunsHandBuiltCode) {
  if (!nativeBackendSupported())
    GTEST_SKIP() << "no native backend on this host";
  std::unique_ptr<ExecBackend> B = makeNativeBackend();
  ASSERT_NE(B, nullptr);
  std::unique_ptr<ExecutableCode> X = B->prepare(const7());
  ASSERT_NE(X, nullptr);
  EXPECT_STREQ(X->backendName(), "native-x64");
  EXPECT_EQ(X->run({}, nullptr, nullptr).asIntUnchecked(), 7);
}

TEST(NativeJit, TypedLoopMatchesInterpreter) {
  if (!nativeBackendSupported())
    GTEST_SKIP() << "no native backend on this host";
  const char *Setup = R"(
    f <- function(n) {
      s <- 0
      for (i in 1:n) s <- s + i * 0.5
      s
    }
  )";
  std::string Interp =
      runUnder(cfg(TierStrategy::Normal, false), Setup, "f(5000L)");
  resetStats();
  std::string Native =
      runUnder(cfg(TierStrategy::Normal, true), Setup, "f(5000L)");
  EXPECT_EQ(Interp, Native);
  EXPECT_GT(stats().NativeCompiles, 0u);
  EXPECT_GT(stats().NativeEnters, 0u) << "the JIT must actually run";
}

TEST(NativeJit, RealCompareBranchesMatchInterpreter) {
  if (!nativeBackendSupported())
    GTEST_SKIP() << "no native backend on this host";
  // Drives the fused double compare-branch templates (ucomisd with
  // swapped-operand encodings and the parity fixups of ==/!=), which
  // the int-typed grids never reach — including NaN operands, where
  // C++'s "unordered compares are false" must survive the jcc mapping.
  const char *Ops[] = {"<", "<=", ">", ">=", "==", "!="};
  for (const char *Op : Ops) {
    std::string Setup =
        std::string("g <- function(a, b) {\n  n <- 0L\n"
                    "  for (i in 1:10) if (a ") +
        Op + " b) n <- n + 1L else n <- n - 1L\n  n\n}\n";
    for (const char *Args :
         {"2.5, 2.5", "1.5, 2.5", "2.5, 1.5", "0 / 0, 1.0",
          "1.0, 0 / 0", "0 / 0, 0 / 0"}) {
      std::string Driver = std::string("g(") + Args + ")";
      std::string Interp =
          runUnder(cfg(TierStrategy::Normal, false), Setup, Driver);
      std::string Native =
          runUnder(cfg(TierStrategy::Normal, true), Setup, Driver);
      EXPECT_EQ(Interp, Native) << "op " << Op << " args " << Args;
    }
  }
}

TEST(NativeJit, GuardSideExitDrivesTrueDeopt) {
  if (!nativeBackendSupported())
    GTEST_SKIP() << "no native backend on this host";
  const char *Setup = R"(
    sum_data <- function(data) {
      total <- 0L
      for (i in 1:length(data)) total <- total + data[[i]]
      total
    }
  )";
  Vm V(cfg(TierStrategy::Normal, true));
  V.eval(Setup);
  for (int K = 0; K < 5; ++K)
    V.eval("sum_data(1:40)");
  ASSERT_GT(stats().NativeEnters, 0u);
  // Phase change: a native guard must side-exit into the unchanged OSR
  // machinery and produce the interpreter's exact result.
  EXPECT_EQ(V.eval("sum_data(as.numeric(1:40)) + 0.5").show(), "820.5");
  EXPECT_GT(stats().Deopts, 0u) << "the side exit must reach OSR-out";
}

TEST(NativeJit, GuardSideExitDrivesDeoptlessDispatch) {
  if (!nativeBackendSupported())
    GTEST_SKIP() << "no native backend on this host";
  const char *Setup = R"(
    sum_data <- function(data) {
      total <- 0L
      for (i in 1:length(data)) total <- total + data[[i]]
      total
    }
  )";
  Vm V(cfg(TierStrategy::Deoptless, true));
  V.eval(Setup);
  for (int K = 0; K < 5; ++K)
    V.eval("sum_data(1:40)");
  std::string R1 = V.eval("sum_data(as.numeric(1:40))").show();
  std::string R2 = V.eval("sum_data(as.numeric(1:40))").show();
  EXPECT_EQ(R1, "820");
  EXPECT_EQ(R2, "820");
  EXPECT_GT(stats().DeoptlessCompiles + stats().DeoptlessHits, 0u)
      << "native guard failures must dispatch through deoptless";
  EXPECT_EQ(stats().Deopts, 0u)
      << "deoptless must have absorbed the phase change";
}

TEST(NativeJit, MultiFrameOsrOutFromInlinedFrames) {
  if (!nativeBackendSupported())
    GTEST_SKIP() << "no native backend on this host";
  // The kD shape of the fuzzer: a list element (type invisible to the
  // caller) flows into an inlined callee; the callee's guard fails in
  // native code and OSR-out must rebuild the whole frame chain.
  const char *Setup = R"(
    kA <- function(a, b) {
      acc <- a
      for (i in 1:3) acc <- acc + (b - 1L)
      acc
    }
    kD <- function(l, i) kA(l[[i]], 2L)
    li <- list(3L, 2L, 3L, 8L)
    lr <- list(8.5, 9.5, 2.5, 7.5)
  )";
  Vm::Config C = cfg(TierStrategy::Normal, true);
  C.Inlining = true;
  Vm V(C);
  V.eval(Setup);
  for (int K = 0; K < 6; ++K)
    V.eval("kD(li, 1L)");
  ASSERT_GT(stats().InlinedCalls, 0u) << "kA must be inlined into kD";
  ASSERT_GT(stats().NativeEnters, 0u);
  EXPECT_EQ(V.eval("kD(lr, 2L)").show(), "12.5");
  EXPECT_GT(stats().MultiFrameDeopts, 0u)
      << "the native side exit must materialize the inlined frames";
}

TEST(NativeJit, InjectedInvalidationKeepsResults) {
  if (!nativeBackendSupported())
    GTEST_SKIP() << "no native backend on this host";
  const char *Setup = R"(
    work <- function(n) {
      v <- integer(n)
      for (i in 1:n) v[[i]] <- (i * 7L) %% 13L
      s <- 0L
      for (i in 1:n) if (v[[i]] > 6L) s <- s + v[[i]]
      s
    }
  )";
  std::string Base = runUnder(cfg(TierStrategy::BaselineOnly, false),
                              Setup, "work(400L)", 20);
  for (TierStrategy S :
       {TierStrategy::Normal, TierStrategy::Deoptless}) {
    Vm::Config C = cfg(S, true);
    // Low rate, many repetitions: loop-invariant guards are hoisted, so
    // steady state executes only a handful of checks per call and the
    // countdown needs density to provably fire.
    C.InvalidationRate = 20;
    C.InvalidationSeed = 99;
    resetStats();
    EXPECT_EQ(runUnder(C, Setup, "work(400L)", 20), Base)
        << "strategy " << static_cast<int>(S);
    EXPECT_GT(stats().InjectedFailures, 0u)
        << "the countdown slow path must have fired in native guards";
  }
}

//===----------------------------------------------------------------------===//
// Native tier v2: register allocation, fusion, direct linking

/// All three v2 features forced on, independent of the RJIT_NATIVE_V2
/// environment (CI's off-switch job must not turn these tests into
/// no-ops).
Vm::Config v2cfg(TierStrategy S) {
  Vm::Config C = cfg(S, true);
  C.NativeV2.Regalloc = true;
  C.NativeV2.Fusion = true;
  C.NativeV2.Linking = true;
  return C;
}

TEST(NativeV2, RegisterAllocationSpillsDeterministically) {
  if (!nativeBackendSupported())
    GTEST_SKIP() << "no native backend on this host";
  // Hand-built LowCode with more live raw-int slots (10) than the GPR
  // pool holds (6): the allocator must home the pool's worth, spill the
  // rest, and the generated code must still sum all ten correctly —
  // homed and spilled slots mixing in one arithmetic chain.
  auto F = std::make_unique<LowFunction>();
  F->NumSlots = 1;
  F->NumSlotsI = 10;
  for (int K = 0; K < 10; ++K) {
    F->Consts.push_back(Value::integer(K + 1));
    LowInstr Ld;
    Ld.Op = LowOp::LoadConst;
    Ld.Dst = static_cast<uint16_t>(K);
    Ld.B = static_cast<uint16_t>(SlotClass::RawInt);
    Ld.Imm = K;
    F->Code.push_back(Ld);
  }
  // A second definition per slot (a self-move) keeps the slots out of
  // the constant-folding analysis — the point here is live registers
  // competing for the pool, not immediates.
  for (int K = 0; K < 10; ++K) {
    LowInstr Mv;
    Mv.Op = LowOp::Move;
    Mv.Dst = static_cast<uint16_t>(K);
    Mv.A = static_cast<uint16_t>(K);
    Mv.B = static_cast<uint16_t>(SlotClass::RawInt);
    F->Code.push_back(Mv);
  }
  for (int K = 1; K < 10; ++K) {
    LowInstr Add;
    Add.Op = LowOp::ArithTyped;
    Add.Dst = 0;
    Add.A = 0;
    Add.B = static_cast<uint16_t>(K);
    Add.C = static_cast<uint16_t>(
        (static_cast<uint16_t>(BinOp::Add) << 2) | 1);
    F->Code.push_back(Add);
  }
  LowInstr Box;
  Box.Op = LowOp::Box;
  Box.Dst = 0;
  Box.A = 0;
  Box.C = static_cast<uint16_t>(SlotClass::RawInt);
  F->Code.push_back(Box);
  LowInstr Ret;
  Ret.Op = LowOp::RetLow;
  Ret.A = 0;
  F->Code.push_back(Ret);

  NativeTierOptions O;
  O.Regalloc = true;
  O.Fusion = true;
  O.Linking = false;
  std::unique_ptr<ExecBackend> B = makeNativeBackend(O);
  ASSERT_NE(B, nullptr);
  resetStats();
  std::unique_ptr<ExecutableCode> X = B->prepare(std::move(F));
  ASSERT_NE(X, nullptr);
  EXPECT_GT(stats().NativeRegSpills, 0u)
      << "10 live int slots must overflow the 6-register GPR pool";
  EXPECT_EQ(X->run({}, nullptr, nullptr).asIntUnchecked(), 55);
}

TEST(NativeV2, FusionFiresAndPreservesResults) {
  if (!nativeBackendSupported())
    GTEST_SKIP() << "no native backend on this host";
  // A typed reduction whose inner loop is exactly the fusion targets:
  // extract feeding arithmetic, and arithmetic results moved between raw
  // slots. Parity against the interpreter backend plus a counter proof
  // that superinstructions were actually emitted.
  const char *Setup = R"(
    dot <- function(v, n) {
      s <- 0
      for (i in 1:n) s <- s + v[[i]] * 1.5
      s
    }
  )";
  std::string Interp = runUnder(cfg(TierStrategy::Normal, false),
                                Setup + std::string("v <- as.numeric(1:64)"),
                                "dot(v, 64L)");
  resetStats();
  std::string Native = runUnder(v2cfg(TierStrategy::Normal),
                                Setup + std::string("v <- as.numeric(1:64)"),
                                "dot(v, 64L)");
  EXPECT_EQ(Interp, Native);
  EXPECT_GT(stats().NativeCompiles, 0u);
  EXPECT_GT(stats().NativeFusedOps, 0u)
      << "the extract+arith / arith+move pairs must have fused";
}

TEST(NativeV2, RetireWhileLinkedPatchesBackBeforeReclaim) {
  if (!nativeBackendSupported())
    GTEST_SKIP() << "no native backend on this host";
  // The linking soundness invariant: when a linked callee version is
  // retired, every predecessor's direct transfer is severed at retire
  // time — strictly before the graveyard safepoint can unmap the target
  // block — and the site falls back to full dispatch, then relinks once
  // a replacement version is published.
  Vm::Config C = v2cfg(TierStrategy::Normal);
  C.Inlining = false; // keep g an out-of-line call so the site links
  C.SafepointInterval = 1;
  Vm V(C);
  V.eval(R"(
    g <- function(x) x + 1L
    h <- function(n) {
      s <- 0L
      for (i in 1:n) s <- s + g(i)
      s
    }
  )");
  for (int K = 0; K < 6; ++K)
    ASSERT_EQ(V.eval("h(50L)").asIntUnchecked(), 1325);
  ASSERT_GT(stats().NativeEnters, 0u);
  ASSERT_GT(stats().NativeLinkedTransfers, 0u)
      << "h's call site must have linked to g's published version";

  Function *GFn = V.eval("g").closObj()->Fn;
  FnVersion *Ver = V.stateFor(GFn).Versions.dispatch(genericContext(1));
  ASSERT_NE(Ver, nullptr);
  ExecutableCode *GCode = Ver->code();
  ASSERT_NE(GCode, nullptr);
  ASSERT_GE(V.backend()->linkedPredecessors(GCode), 1u)
      << "the link registry must know h's site points into g's code";

  // Type change: g's int-speculated version deopts and is retired. The
  // eval finishes in the baseline with no further closure dispatch, so
  // the safepoint has NOT run yet: the dead code is graveyarded but not
  // reclaimed — and the predecessor count must already be zero. That
  // ordering (unlink at retire, reclaim at the later safepoint) is what
  // keeps a linked jump from ever targeting unmapped memory.
  uint64_t Retired = stats().GraveyardSize;
  V.eval("g(1.5)");
  EXPECT_GT(stats().Deopts, 0u);
  EXPECT_GT(stats().GraveyardSize, Retired)
      << "the deopted version must be graveyarded, not freed";
  EXPECT_EQ(V.backend()->linkedPredecessors(GCode), 0u)
      << "retire must sever every predecessor link before reclamation";

  // The severed site must fall back to dispatch (correctness) and relink
  // once g republishes: linked transfers resume growing.
  for (int K = 0; K < 6; ++K)
    ASSERT_EQ(V.eval("h(50L)").asIntUnchecked(), 1325);
  uint64_t AfterRepublish = stats().NativeLinkedTransfers;
  for (int K = 0; K < 4; ++K)
    ASSERT_EQ(V.eval("h(50L)").asIntUnchecked(), 1325);
  EXPECT_GT(stats().NativeLinkedTransfers, AfterRepublish)
      << "the site must relink to the republished version";
}

TEST(NativeJit, BackgroundCompilePublishesNativeCode) {
  if (!nativeBackendSupported())
    GTEST_SKIP() << "no native backend on this host";
  Vm::Config C = cfg(TierStrategy::Normal, true);
  C.BackgroundCompile = true;
  C.CompilerThreads = 2;
  Vm V(C);
  V.eval("f <- function(n) { s <- 0L\n for (i in 1:n) s <- s + i\n s }");
  for (int K = 0; K < 4; ++K)
    V.eval("f(50L)");
  V.drainCompiles();
  Value R = V.eval("f(50L)");
  EXPECT_EQ(R.asIntUnchecked(), 1275);
  EXPECT_GT(stats().NativeEnters, 0u)
      << "the drained background compile must have published native "
         "code through the snapshot/COW discipline";
}
