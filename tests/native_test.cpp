//===-- tests/native_test.cpp - Execution-backend seam & template JIT ------===//
//
// Unit and end-to-end coverage for the pluggable-backend refactor:
//
//  * the seam itself — prepare() wrapping, low() identity, the interpreter
//    backend as the portable fallback;
//  * the x86-64 template JIT — hand-built LowCode run natively, end-to-end
//    parity with the interpreter backend across tier strategies, guard
//    side exits feeding the unchanged deopt machinery (true deopt,
//    deoptless dispatch, multi-frame OSR-out from inlined frames), and
//    the injected-invalidation slow path through native guards.
//
// Native cases skip (not fail) on hosts without the backend; the seam
// cases run everywhere.
//
//===----------------------------------------------------------------------===//

#include "native/native.h"
#include "support/stats.h"
#include "vm/vm.h"

#include <gtest/gtest.h>

using namespace rjit;

namespace {

/// Hand-built "return the integer constant 7" LowCode.
std::unique_ptr<LowFunction> const7() {
  auto F = std::make_unique<LowFunction>();
  F->NumSlots = 1;
  F->Consts.push_back(Value::integer(7));
  LowInstr Ld;
  Ld.Op = LowOp::LoadConst;
  Ld.Dst = 0;
  Ld.B = static_cast<uint16_t>(SlotClass::Boxed);
  Ld.Imm = 0;
  F->Code.push_back(Ld);
  LowInstr Ret;
  Ret.Op = LowOp::RetLow;
  Ret.A = 0;
  F->Code.push_back(Ret);
  return F;
}

Vm::Config cfg(TierStrategy S, bool Native) {
  Vm::Config C;
  C.Strategy = S;
  C.CompileThreshold = 2;
  C.OsrThreshold = 100;
  C.NativeTier = Native;
  return C;
}

/// Runs Setup once and Driver \p Reps times under \p C; returns the last
/// value rendered.
std::string runUnder(Vm::Config C, const std::string &Setup,
                     const std::string &Driver, int Reps = 8) {
  Vm V(C);
  V.eval(Setup);
  Value R;
  for (int K = 0; K < Reps; ++K)
    R = V.eval(Driver);
  return R.show();
}

} // namespace

//===----------------------------------------------------------------------===//
// The seam

TEST(BackendSeam, InterpBackendWrapsAndRuns) {
  std::unique_ptr<LowFunction> Low = const7();
  const LowFunction *Raw = Low.get();
  std::unique_ptr<ExecutableCode> X =
      interpBackend().prepare(std::move(Low));
  ASSERT_NE(X, nullptr);
  EXPECT_STREQ(X->backendName(), "interp");
  EXPECT_EQ(X->lowPtr(), Raw) << "low() must be the identity the deopt "
                                 "runtime keys on";
  Value R = X->run({}, nullptr, nullptr);
  EXPECT_EQ(R.asIntUnchecked(), 7);
}

TEST(BackendSeam, NullBackendResolvesToInterp) {
  EXPECT_EQ(&backendOr(nullptr), &interpBackend());
}

TEST(BackendSeam, UnsupportedHostsReportNoNativeBackend) {
  // On supported hosts makeNativeBackend() must produce a backend; on
  // unsupported ones it must return null (and the Vm falls back).
  std::unique_ptr<ExecBackend> B = makeNativeBackend();
  EXPECT_EQ(B != nullptr, nativeBackendSupported());
}

//===----------------------------------------------------------------------===//
// The template JIT

TEST(NativeJit, RunsHandBuiltCode) {
  if (!nativeBackendSupported())
    GTEST_SKIP() << "no native backend on this host";
  std::unique_ptr<ExecBackend> B = makeNativeBackend();
  ASSERT_NE(B, nullptr);
  std::unique_ptr<ExecutableCode> X = B->prepare(const7());
  ASSERT_NE(X, nullptr);
  EXPECT_STREQ(X->backendName(), "native-x64");
  EXPECT_EQ(X->run({}, nullptr, nullptr).asIntUnchecked(), 7);
}

TEST(NativeJit, TypedLoopMatchesInterpreter) {
  if (!nativeBackendSupported())
    GTEST_SKIP() << "no native backend on this host";
  const char *Setup = R"(
    f <- function(n) {
      s <- 0
      for (i in 1:n) s <- s + i * 0.5
      s
    }
  )";
  std::string Interp =
      runUnder(cfg(TierStrategy::Normal, false), Setup, "f(5000L)");
  resetStats();
  std::string Native =
      runUnder(cfg(TierStrategy::Normal, true), Setup, "f(5000L)");
  EXPECT_EQ(Interp, Native);
  EXPECT_GT(stats().NativeCompiles, 0u);
  EXPECT_GT(stats().NativeEnters, 0u) << "the JIT must actually run";
}

TEST(NativeJit, RealCompareBranchesMatchInterpreter) {
  if (!nativeBackendSupported())
    GTEST_SKIP() << "no native backend on this host";
  // Drives the fused double compare-branch templates (ucomisd with
  // swapped-operand encodings and the parity fixups of ==/!=), which
  // the int-typed grids never reach — including NaN operands, where
  // C++'s "unordered compares are false" must survive the jcc mapping.
  const char *Ops[] = {"<", "<=", ">", ">=", "==", "!="};
  for (const char *Op : Ops) {
    std::string Setup =
        std::string("g <- function(a, b) {\n  n <- 0L\n"
                    "  for (i in 1:10) if (a ") +
        Op + " b) n <- n + 1L else n <- n - 1L\n  n\n}\n";
    for (const char *Args :
         {"2.5, 2.5", "1.5, 2.5", "2.5, 1.5", "0 / 0, 1.0",
          "1.0, 0 / 0", "0 / 0, 0 / 0"}) {
      std::string Driver = std::string("g(") + Args + ")";
      std::string Interp =
          runUnder(cfg(TierStrategy::Normal, false), Setup, Driver);
      std::string Native =
          runUnder(cfg(TierStrategy::Normal, true), Setup, Driver);
      EXPECT_EQ(Interp, Native) << "op " << Op << " args " << Args;
    }
  }
}

TEST(NativeJit, GuardSideExitDrivesTrueDeopt) {
  if (!nativeBackendSupported())
    GTEST_SKIP() << "no native backend on this host";
  const char *Setup = R"(
    sum_data <- function(data) {
      total <- 0L
      for (i in 1:length(data)) total <- total + data[[i]]
      total
    }
  )";
  Vm V(cfg(TierStrategy::Normal, true));
  V.eval(Setup);
  for (int K = 0; K < 5; ++K)
    V.eval("sum_data(1:40)");
  ASSERT_GT(stats().NativeEnters, 0u);
  // Phase change: a native guard must side-exit into the unchanged OSR
  // machinery and produce the interpreter's exact result.
  EXPECT_EQ(V.eval("sum_data(as.numeric(1:40)) + 0.5").show(), "820.5");
  EXPECT_GT(stats().Deopts, 0u) << "the side exit must reach OSR-out";
}

TEST(NativeJit, GuardSideExitDrivesDeoptlessDispatch) {
  if (!nativeBackendSupported())
    GTEST_SKIP() << "no native backend on this host";
  const char *Setup = R"(
    sum_data <- function(data) {
      total <- 0L
      for (i in 1:length(data)) total <- total + data[[i]]
      total
    }
  )";
  Vm V(cfg(TierStrategy::Deoptless, true));
  V.eval(Setup);
  for (int K = 0; K < 5; ++K)
    V.eval("sum_data(1:40)");
  std::string R1 = V.eval("sum_data(as.numeric(1:40))").show();
  std::string R2 = V.eval("sum_data(as.numeric(1:40))").show();
  EXPECT_EQ(R1, "820");
  EXPECT_EQ(R2, "820");
  EXPECT_GT(stats().DeoptlessCompiles + stats().DeoptlessHits, 0u)
      << "native guard failures must dispatch through deoptless";
  EXPECT_EQ(stats().Deopts, 0u)
      << "deoptless must have absorbed the phase change";
}

TEST(NativeJit, MultiFrameOsrOutFromInlinedFrames) {
  if (!nativeBackendSupported())
    GTEST_SKIP() << "no native backend on this host";
  // The kD shape of the fuzzer: a list element (type invisible to the
  // caller) flows into an inlined callee; the callee's guard fails in
  // native code and OSR-out must rebuild the whole frame chain.
  const char *Setup = R"(
    kA <- function(a, b) {
      acc <- a
      for (i in 1:3) acc <- acc + (b - 1L)
      acc
    }
    kD <- function(l, i) kA(l[[i]], 2L)
    li <- list(3L, 2L, 3L, 8L)
    lr <- list(8.5, 9.5, 2.5, 7.5)
  )";
  Vm::Config C = cfg(TierStrategy::Normal, true);
  C.Inlining = true;
  Vm V(C);
  V.eval(Setup);
  for (int K = 0; K < 6; ++K)
    V.eval("kD(li, 1L)");
  ASSERT_GT(stats().InlinedCalls, 0u) << "kA must be inlined into kD";
  ASSERT_GT(stats().NativeEnters, 0u);
  EXPECT_EQ(V.eval("kD(lr, 2L)").show(), "12.5");
  EXPECT_GT(stats().MultiFrameDeopts, 0u)
      << "the native side exit must materialize the inlined frames";
}

TEST(NativeJit, InjectedInvalidationKeepsResults) {
  if (!nativeBackendSupported())
    GTEST_SKIP() << "no native backend on this host";
  const char *Setup = R"(
    work <- function(n) {
      v <- integer(n)
      for (i in 1:n) v[[i]] <- (i * 7L) %% 13L
      s <- 0L
      for (i in 1:n) if (v[[i]] > 6L) s <- s + v[[i]]
      s
    }
  )";
  std::string Base = runUnder(cfg(TierStrategy::BaselineOnly, false),
                              Setup, "work(400L)", 20);
  for (TierStrategy S :
       {TierStrategy::Normal, TierStrategy::Deoptless}) {
    Vm::Config C = cfg(S, true);
    // Low rate, many repetitions: loop-invariant guards are hoisted, so
    // steady state executes only a handful of checks per call and the
    // countdown needs density to provably fire.
    C.InvalidationRate = 20;
    C.InvalidationSeed = 99;
    resetStats();
    EXPECT_EQ(runUnder(C, Setup, "work(400L)", 20), Base)
        << "strategy " << static_cast<int>(S);
    EXPECT_GT(stats().InjectedFailures, 0u)
        << "the countdown slow path must have fired in native guards";
  }
}

TEST(NativeJit, BackgroundCompilePublishesNativeCode) {
  if (!nativeBackendSupported())
    GTEST_SKIP() << "no native backend on this host";
  Vm::Config C = cfg(TierStrategy::Normal, true);
  C.BackgroundCompile = true;
  C.CompilerThreads = 2;
  Vm V(C);
  V.eval("f <- function(n) { s <- 0L\n for (i in 1:n) s <- s + i\n s }");
  for (int K = 0; K < 4; ++K)
    V.eval("f(50L)");
  V.drainCompiles();
  Value R = V.eval("f(50L)");
  EXPECT_EQ(R.asIntUnchecked(), 1275);
  EXPECT_GT(stats().NativeEnters, 0u)
      << "the drained background compile must have published native "
         "code through the snapshot/COW discipline";
}
