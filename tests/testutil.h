//===-- tests/testutil.h - Shared test helpers -------------------*- C++ -*-===//

#ifndef RJIT_TESTS_TESTUTIL_H
#define RJIT_TESTS_TESTUTIL_H

#include "bc/compiler.h"
#include "bc/interp.h"
#include "lang/parser.h"
#include "runtime/builtins.h"
#include "runtime/env.h"
#include "runtime/gcheap.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace rjit {

/// A baseline-only evaluation fixture: parses, compiles to bytecode and
/// interprets in a fresh global environment with builtins installed.
/// Carries its own cycle-collector registry, exactly like a Vm: programs
/// that define functions strand Global<->closure reference cycles that
/// refcounting alone cannot free, and the leak-checked CI jobs run with
/// no suppressions.
class BaselineSession {
public:
  BaselineSession() : Saved(activeGcHeap()) {
    activeGcHeap() = &Heap;
    Global = new Env(nullptr);
    Global->retain();
    installBuiltins(*Global);
  }
  ~BaselineSession() {
    Mods.clear();
    Global->release();
    Heap.collect(); // Global<->closure cycles from evaluated definitions
    Heap.orphanAll();
    if (activeGcHeap() == &Heap)
      activeGcHeap() = Saved;
  }

  /// Evaluates \p Source; gtest-fails and returns NULL on front-end errors.
  Value eval(const std::string &Source) {
    ParseResult P = parseProgram(Source);
    EXPECT_TRUE(P.ok()) << P.Error;
    if (!P.ok())
      return Value::nil();
    BcResult B = compileToBc(*P.Ast);
    EXPECT_TRUE(B.ok()) << B.Error;
    if (!B.ok())
      return Value::nil();
    Mods.push_back(std::move(B.Mod));
    return interpret(Mods.back()->Top, Global);
  }

  Env *global() { return Global; }
  Module *lastModule() { return Mods.back().get(); }

private:
  GcHeap Heap;
  GcHeap *Saved;
  Env *Global;
  std::vector<std::unique_ptr<Module>> Mods;
};

} // namespace rjit

#endif // RJIT_TESTS_TESTUTIL_H
