//===-- tests/opt_test.cpp - Optimizer pipeline tests ----------------------===//

#include "opt/cleanup.h"
#include "opt/pipeline.h"
#include "testutil.h"

#include <gtest/gtest.h>

using namespace rjit;

namespace {

/// Warms a function in the baseline so its feedback is populated, then
/// returns the Function of the first non-top closure.
class OptFixture : public ::testing::Test {
protected:
  BaselineSession S;

  Function *warm(const std::string &Source) {
    S.eval(Source);
    Module *M = S.lastModule();
    EXPECT_GE(M->Fns.size(), 2u) << "expected a closure in the program";
    return M->Fns.size() >= 2 ? M->Fns[1].get() : nullptr;
  }

  static int countOps(const IrCode &C, IrOp Op) {
    int N = 0;
    const_cast<IrCode &>(C).eachInstr([&](Instr *I) { N += I->Op == Op; });
    return N;
  }
};

const OptOptions DefaultOpts;

} // namespace

TEST_F(OptFixture, ElidabilityAnalysis) {
  Function *F = warm(R"(
    f <- function(x) { y <- x + 1; y }
    f(1L)
  )");
  EXPECT_TRUE(envIsElidable(*F));
}

TEST_F(OptFixture, ClosureCreationPreventsElision) {
  Function *F = warm(R"(
    f <- function(x) { g <- function() x; g() }
    f(1L)
  )");
  EXPECT_FALSE(envIsElidable(*F));
}

TEST_F(OptFixture, ReadFirstThenWritePreventsElision) {
  S.eval("g_counter <- 0L");
  Function *F = warm(R"(
    f <- function() { x <- g_counter + 1L; g_counter <- x; g_counter }
    f()
  )");
  EXPECT_FALSE(envIsElidable(*F));
}

TEST_F(OptFixture, SuperAssignDoesNotPreventElision) {
  S.eval("acc <- 0L");
  Function *F = warm(R"(
    f <- function(x) { acc <<- x; x }
    f(1L)
  )");
  EXPECT_TRUE(envIsElidable(*F));
}

TEST_F(OptFixture, TranslateProducesVerifiableIr) {
  Function *F = warm(R"(
    f <- function(n) {
      t <- 0L
      for (i in 1:n) t <- t + i
      t
    }
    f(10L); f(10L)
  )");
  auto C = optimizeToIr(F, CallConv::FullElided, EntryState(), DefaultOpts);
  ASSERT_TRUE(C);
  EXPECT_EQ(verify(*C), "");
}

TEST_F(OptFixture, SpeculationInsertsAssumes) {
  Function *F = warm(R"(
    f <- function(v) {
      s <- 0
      for (i in 1:length(v)) s <- s + v[[i]]
      s
    }
    x <- c(1.5, 2.5)
    f(x); f(x); f(x)
  )");
  auto C = optimizeToIr(F, CallConv::FullElided, EntryState(), DefaultOpts);
  ASSERT_TRUE(C);
  EXPECT_GT(countOps(*C, IrOp::AssumeIr), 0) << print(*C);
  EXPECT_GT(countOps(*C, IrOp::CheckpointIr), 0);
  EXPECT_GT(countOps(*C, IrOp::FrameStateIr), 0);
}

TEST_F(OptFixture, NoSpeculationWithoutFeedbackOption) {
  Function *F = warm(R"(
    f <- function(v) v[[1]] + v[[2]]
    x <- c(1.5, 2.5)
    f(x); f(x)
  )");
  OptOptions NoSpec;
  NoSpec.Speculate = false;
  auto C = optimizeToIr(F, CallConv::FullElided, EntryState(), NoSpec);
  ASSERT_TRUE(C);
  EXPECT_EQ(countOps(*C, IrOp::AssumeIr), 0);
}

TEST_F(OptFixture, TypedOpsAfterSpeculation) {
  Function *F = warm(R"(
    f <- function(v) {
      s <- 0
      for (i in 1:length(v)) s <- s + v[[i]]
      s
    }
    x <- c(1.5, 2.5, 3.5)
    f(x); f(x); f(x)
  )");
  auto C = optimizeToIr(F, CallConv::FullElided, EntryState(), DefaultOpts);
  ASSERT_TRUE(C);
  // The hot loop body must be fully typed: a raw-vector extract and a
  // typed (unboxed double) add.
  EXPECT_GT(countOps(*C, IrOp::Extract2Typed), 0) << print(*C);
  EXPECT_GT(countOps(*C, IrOp::BinTyped), 0);
}

TEST_F(OptFixture, MonomorphicBuiltinCallSpecialized) {
  Function *F = warm(R"(
    f <- function(v) length(v)
    f(c(1, 2)); f(c(1, 2))
  )");
  auto C = optimizeToIr(F, CallConv::FullElided, EntryState(), DefaultOpts);
  ASSERT_TRUE(C);
  EXPECT_GT(countOps(*C, IrOp::CallBuiltinKnown), 0) << print(*C);
  EXPECT_EQ(countOps(*C, IrOp::CallVal), 0);
}

TEST_F(OptFixture, MonomorphicClosureCallSpecialized) {
  Function *F = warm(R"(
    callee <- function(x) x + 1L
    f <- function(a) callee(a)
    f(1L); f(2L)
  )");
  // f is Fns[2] (callee compiled first).
  Module *M = S.lastModule();
  Function *Caller = M->Fns[2].get();
  auto C =
      optimizeToIr(Caller, CallConv::FullElided, EntryState(), DefaultOpts);
  ASSERT_TRUE(C);
  EXPECT_GT(countOps(*C, IrOp::CallStatic), 0) << print(*C);
}

TEST_F(OptFixture, ConstantFoldingWorks) {
  Function *F = warm(R"(
    f <- function() 2L * 3L + 4L
    f()
  )");
  auto C = optimizeToIr(F, CallConv::FullElided, EntryState(), DefaultOpts);
  ASSERT_TRUE(C);
  EXPECT_EQ(countOps(*C, IrOp::BinGen) + countOps(*C, IrOp::BinTyped), 0)
      << print(*C);
  bool Found10 = false;
  C->eachInstr([&](Instr *I) {
    if (I->Op == IrOp::Const && I->Cst.tag() == Tag::Int &&
        I->Cst.asIntUnchecked() == 10)
      Found10 = true;
  });
  EXPECT_TRUE(Found10);
}

TEST_F(OptFixture, BranchPruningOnConstants) {
  Function *F = warm(R"(
    f <- function(x) if (TRUE) x else x * 999L
    f(1L)
  )");
  auto C = optimizeToIr(F, CallConv::FullElided, EntryState(), DefaultOpts);
  ASSERT_TRUE(C);
  EXPECT_EQ(countOps(*C, IrOp::BranchIr), 0) << print(*C);
}

TEST_F(OptFixture, MixedNumericPhiStaysUnpromoted) {
  // s starts as integer 0L and accumulates doubles. The phi must NOT be
  // promoted to Real with edge coercions: coercion changes the value's
  // observable kind (a deopt before the first update must materialize 0L,
  // not 0.0, and a zero-trip loop must yield 0L) — the cross-tier fuzzer
  // catches promoted phis as int/real transcript divergences. The mixed
  // phi keeps its imprecise joined type and stays boxed.
  Function *F = warm(R"(
    f <- function(v) {
      s <- 0L
      for (i in 1:length(v)) s <- s + v[[i]]
      s
    }
    x <- c(1.5, 2.5)
    f(x); f(x)
  )");
  auto C = optimizeToIr(F, CallConv::FullElided, EntryState(), DefaultOpts);
  ASSERT_TRUE(C);
  bool FoundMixedPhi = false;
  C->eachInstr([&](Instr *I) {
    if (I->Op == IrOp::Phi && I->Type.contains(Tag::Int) &&
        I->Type.contains(Tag::Real)) {
      FoundMixedPhi = true;
      EXPECT_FALSE(I->Type.precise()) << print(*C);
    }
  });
  EXPECT_TRUE(FoundMixedPhi) << print(*C);
}

TEST_F(OptFixture, DeoptlessConvRequiresElidableEnv) {
  Function *F = warm(R"(
    f <- function(x) { g <- function() x; g() }
    f(1L)
  )");
  EntryState E;
  E.Pc = 0;
  auto C = optimizeToIr(F, CallConv::Deoptless, E, DefaultOpts);
  EXPECT_FALSE(C) << "leaked environments must be rejected (paper §4.3)";
}

TEST_F(OptFixture, ContinuationEntryMidFunction) {
  Function *F = warm(R"(
    f <- function(n) {
      t <- 0L
      for (i in 1:n) t <- t + i
      t
    }
    f(50L); f(50L)
  )");
  // Find the loop-head pc: the ForStep instruction.
  int32_t ForPc = -1;
  for (size_t K = 0; K < F->BC.Instrs.size(); ++K)
    if (F->BC.Instrs[K].Op == Opcode::ForStep)
      ForPc = static_cast<int32_t>(K);
  ASSERT_GE(ForPc, 0);

  EntryState E;
  E.Pc = ForPc;
  E.StackTypes = {RType::of(Tag::IntVec), RType::of(Tag::Int)};
  E.EnvTypes = {{symbol("t"), RType::of(Tag::Int)},
                {symbol("i"), RType::of(Tag::Int)},
                {symbol("n"), RType::of(Tag::Int)}};
  auto C = optimizeToIr(F, CallConv::Deoptless, E, DefaultOpts);
  ASSERT_TRUE(C);
  EXPECT_EQ(verify(*C), "");
  EXPECT_EQ(C->NumStackParams, 2u);
  EXPECT_EQ(C->EnvParamSyms.size(), 3u);
  EXPECT_EQ(countOps(*C, IrOp::LdVarEnv), 0)
      << "locals must come from params, not the env: " << print(*C);
}

TEST_F(OptFixture, FrameStatesDescribeInterpreterState) {
  Function *F = warm(R"(
    f <- function(v) v[[1]]
    x <- c(1.5)
    f(x); f(x)
  )");
  auto C = optimizeToIr(F, CallConv::FullElided, EntryState(), DefaultOpts);
  ASSERT_TRUE(C);
  bool SawEnvEntry = false;
  C->eachInstr([&](Instr *I) {
    if (I->Op == IrOp::FrameStateIr && !I->EnvSyms.empty())
      SawEnvEntry = true;
  });
  EXPECT_TRUE(SawEnvEntry) << print(*C);
}

//===----------------------------------------------------------------------===//
// IR verifier: structural invariants the between-pass gate enforces

TEST(Verifier, RejectsDominanceViolation) {
  // entry branches to B1/B2; a value defined in B1 is used in B2. Neither
  // block dominates the other, so the use is invalid — the verifier must
  // say so (this is what VerifyBetweenPasses catches when a pass moves an
  // instruction somewhere its operands do not reach).
  IrCode C;
  BB *B1 = C.newBlock();
  BB *B2 = C.newBlock();
  BB *Entry = C.newBlock();
  C.Entry = Entry;

  auto Cond = C.make(IrOp::Const, RType::of(Tag::Lgl));
  Cond->Cst = Value::lgl(true);
  Instr *CondI = Entry->append(std::move(Cond));
  auto Br = C.make(IrOp::BranchIr, RType::none());
  Br->Ops.push_back(CondI);
  Entry->append(std::move(Br));
  Entry->setSuccs(B1, B2);

  // B1 defines a (non-constant) value and returns it.
  auto Len = C.make(IrOp::LengthIr, RType::of(Tag::Int));
  Len->Ops.push_back(CondI);
  Instr *LenI = B1->append(std::move(Len));
  auto Ret1 = C.make(IrOp::Ret, RType::none());
  Ret1->Ops.push_back(LenI);
  B1->append(std::move(Ret1));

  // B2 uses B1's value: a dominance violation.
  auto Ret2 = C.make(IrOp::Ret, RType::none());
  Ret2->Ops.push_back(LenI);
  B2->append(std::move(Ret2));

  std::string Err = verify(C);
  EXPECT_NE(Err.find("does not dominate"), std::string::npos) << Err;
}

TEST_F(OptFixture, VerifierRejectsFrameStatePcOutOfRange) {
  Function *F = warm(R"(
    f <- function(v) v[[1]] + 1
    x <- c(1.5)
    f(x); f(x)
  )");
  auto C = optimizeToIr(F, CallConv::FullElided, EntryState(), DefaultOpts);
  ASSERT_TRUE(C);
  ASSERT_EQ(verify(*C), "");
  // Corrupt a framestate's resume pc past the bytecode body: the
  // frame-state/pc consistency check must reject it.
  Instr *Fs = nullptr;
  C->eachInstr([&](Instr *I) {
    if (!Fs && I->Op == IrOp::FrameStateIr)
      Fs = I;
  });
  ASSERT_NE(Fs, nullptr);
  Fs->BcPc = static_cast<int32_t>(F->BC.Instrs.size()) + 100;
  std::string Err = verify(*C);
  EXPECT_NE(Err.find("out of range"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Feedback cleanup (paper §4.3 "Incomplete Profile Data")

TEST_F(OptFixture, CleanupInjectsActualType) {
  Function *F = warm(R"(
    f <- function(v) v[[1]]
    x <- c(1L, 2L)
    f(x); f(x)
  )");
  // Find the LdVar v slot.
  int32_t Slot = -1, Pc = -1;
  for (size_t K = 0; K < F->BC.Instrs.size(); ++K)
    if (F->BC.Instrs[K].Op == Opcode::LdVar) {
      Slot = F->BC.Instrs[K].B;
      Pc = static_cast<int32_t>(K);
    }
  ASSERT_GE(Slot, 0);
  ASSERT_TRUE(F->Feedback.Types[Slot].seen(Tag::IntVec));

  DeoptSnapshot Snap;
  Snap.Pc = Pc;
  Snap.Kind = DeoptReasonKind::Typecheck;
  Snap.FailedSlot = Slot;
  Snap.ActualTag = Tag::RealVec;
  FeedbackTable FB = cleanupFeedback(*F, Snap);
  EXPECT_TRUE(FB.Types[Slot].monomorphic());
  EXPECT_EQ(FB.Types[Slot].uniqueTag(), Tag::RealVec)
      << "the observed type must be injected";
  // Original profile untouched.
  EXPECT_TRUE(F->Feedback.Types[Slot].seen(Tag::IntVec));
}

TEST_F(OptFixture, CleanupRepairsContradictingVariableProfiles) {
  Function *F = warm(R"(
    f <- function(v) v[[1]] + v[[2]]
    x <- c(1L, 2L)
    f(x); f(x)
  )");
  DeoptSnapshot Snap;
  Snap.Kind = DeoptReasonKind::Typecheck;
  Snap.EnvTags = {{symbol("v"), Tag::RealVec}};
  FeedbackTable FB = cleanupFeedback(*F, Snap);
  // Every LdVar-of-v profile must now claim RealVec.
  for (const BcInstr &I : F->BC.Instrs) {
    if (I.Op != Opcode::LdVar || static_cast<Symbol>(I.A) != symbol("v"))
      continue;
    EXPECT_TRUE(FB.Types[I.B].seen(Tag::RealVec));
    EXPECT_FALSE(FB.Types[I.B].seen(Tag::IntVec));
  }
}

TEST_F(OptFixture, CleanupDisabledLeavesProfileVerbatim) {
  Function *F = warm(R"(
    f <- function(v) v[[1]]
    x <- c(1L)
    f(x); f(x)
  )");
  DeoptSnapshot Snap;
  Snap.EnvTags = {{symbol("v"), Tag::RealVec}};
  FeedbackTable FB = cleanupFeedback(*F, Snap, /*Enabled=*/false);
  for (const BcInstr &I : F->BC.Instrs)
    if (I.Op == Opcode::LdVar)
      EXPECT_EQ(FB.Types[I.B].SeenMask, F->Feedback.Types[I.B].SeenMask);
}
