//===-- examples/phases.cpp - Observing tier transitions -------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
// Reenacts the paper's motivating scenario (Fig. 4) interactively: a data
// analysis function runs through type phases while we watch what each VM
// strategy does — warmup, optimization, deoptimization, recompilation,
// continuation dispatch — with per-phase timings and event counts.
//
//   ./build/examples/phases [--n <elements>]
//
//===----------------------------------------------------------------------===//

#include "support/stats.h"
#include "support/timer.h"
#include "vm/vm.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace rjit;

namespace {

void runStrategy(const char *Name, TierStrategy S, long N) {
  printf("=== strategy: %s ===\n", Name);
  Vm::Config Config;
  Config.Strategy = S;
  Config.CompileThreshold = 3;
  Vm V(Config);

  V.eval(R"(
    analyze <- function(series) {
      peak <- series[[1]]
      avg <- 0
      for (i in 1:length(series)) {
        v <- series[[i]]
        if (v > peak) peak <- v
        avg <- avg + v
      }
      peak + avg / length(series)
    }
  )");

  struct Phase {
    const char *Label;
    std::string Data;
  } Phases[] = {
      {"integers ", "series <- 1:" + std::to_string(N)},
      {"doubles  ", "series <- as.numeric(1:" + std::to_string(N) + ")"},
      {"integers2", "series <- 1:" + std::to_string(N)},
  };

  for (const auto &P : Phases) {
    V.eval(P.Data);
    VmStats Before = stats();
    double Total = 0;
    for (int K = 0; K < 6; ++K) {
      Timer T;
      V.eval("analyze(series)");
      Total += T.elapsedSeconds();
    }
    VmStats Delta = stats() - Before;
    printf("  %s  %8.2f ms/iter   compiles=%llu deopts=%llu "
           "continuations=%llu hits=%llu\n",
           P.Label, Total / 6 * 1000,
           static_cast<unsigned long long>(Delta.Compilations),
           static_cast<unsigned long long>(Delta.Deopts),
           static_cast<unsigned long long>(Delta.DeoptlessCompiles),
           static_cast<unsigned long long>(Delta.DeoptlessHits));
  }
}

} // namespace

int main(int Argc, char **Argv) {
  long N = 200000;
  for (int K = 1; K + 1 < Argc; ++K)
    if (!strcmp(Argv[K], "--n"))
      N = strtol(Argv[K + 1], nullptr, 10);

  runStrategy("baseline only (never optimize)", TierStrategy::BaselineOnly,
              N);
  runStrategy("normal (deopt + generic recompile)", TierStrategy::Normal, N);
  runStrategy("deoptless (dispatched continuations)",
              TierStrategy::Deoptless, N);
  printf("\nCompare the doubles and integers2 rows: the normal strategy "
         "pays a deopt,\nre-warms, and converges to generic code; deoptless "
         "keeps both specializations.\n");
  return 0;
}
