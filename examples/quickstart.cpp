//===-- examples/quickstart.cpp - Embedding the VM -------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
// The five-minute tour: create a VM, run mini-R code, watch the tiers at
// work. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "support/stats.h"
#include "vm/vm.h"

#include <cstdio>

using namespace rjit;

int main() {
  // A VM with the deoptless strategy: failing speculations dispatch to
  // specialized continuations instead of falling back to the interpreter.
  Vm::Config Config;
  Config.Strategy = TierStrategy::Deoptless;
  Config.CompileThreshold = 3; // optimize after three calls
  Vm V(Config);

  // Plain evaluation: the last statement's value is returned.
  Value R = V.eval("x <- 40L\nx + 2L");
  printf("x + 2L = %s\n", R.show().c_str());

  // Define a function and warm it up on integer data. After the third
  // call the optimizing compiler speculates on everything the profile
  // suggests: `data` is an integer vector, `total` stays an integer, the
  // loop runs over an integer sequence.
  V.eval(R"(
    sum_data <- function(data) {
      total <- 0L
      for (i in 1:length(data)) total <- total + data[[i]]
      total
    }
  )");
  for (int K = 0; K < 5; ++K)
    V.eval("sum_data(1:100000)");
  printf("optimizing compilations so far: %llu\n",
         static_cast<unsigned long long>(stats().Compilations));

  // Phase change: doubles instead of integers. The speculative guard
  // fails — but instead of deoptimizing to the interpreter, the VM
  // compiles a continuation specialized for doubles and keeps both
  // versions around.
  Value S = V.eval("sum_data(as.numeric(1:100000))");
  printf("sum of doubles = %s\n", S.show().c_str());
  printf("true deopts: %llu, deoptless continuations compiled: %llu\n",
         static_cast<unsigned long long>(stats().Deopts),
         static_cast<unsigned long long>(stats().DeoptlessCompiles));

  // Going back to integers hits the original optimized code; doubles hit
  // the cached continuation. Neither pays a deoptimization again.
  V.eval("sum_data(1:100000)");
  V.eval("sum_data(as.numeric(1:100000))");
  printf("dispatch hits after re-running both phases: %llu\n",
         static_cast<unsigned long long>(stats().DeoptlessHits));

  // Front-end errors are reported as values, not exceptions.
  Value Dummy;
  std::string Error;
  if (!V.eval("f(", Dummy, Error))
    printf("parse error reported: %s\n", Error.c_str());

  return 0;
}
