//===-- examples/repl.cpp - Interactive mini-R shell -----------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
// A line-oriented REPL over the VM, with `:`-commands to inspect the JIT:
//
//   > f <- function(x) x + 1
//   > f(1L)
//   [1] 2L
//   > :stats          event counters (compiles, deopts, dispatches)
//   > :strategy deoptless | normal | baseline     restart with a strategy
//   > :quit
//
//===----------------------------------------------------------------------===//

#include "support/stats.h"
#include "vm/vm.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

using namespace rjit;

namespace {

std::unique_ptr<Vm> makeVm(TierStrategy S) {
  Vm::Config Config;
  Config.Strategy = S;
  Config.CompileThreshold = 3;
  return std::make_unique<Vm>(Config);
}

void printStats() {
  const VmStats &St = stats();
  printf("compilations=%llu osr-in=%llu deopts=%llu deoptless: "
         "compiles=%llu hits=%llu rejected=%llu | guard checks=%llu\n",
         static_cast<unsigned long long>(St.Compilations),
         static_cast<unsigned long long>(St.OsrInEntries),
         static_cast<unsigned long long>(St.Deopts),
         static_cast<unsigned long long>(St.DeoptlessCompiles),
         static_cast<unsigned long long>(St.DeoptlessHits),
         static_cast<unsigned long long>(St.DeoptlessRejected),
         static_cast<unsigned long long>(St.AssumeChecks));
}

} // namespace

int main() {
  std::unique_ptr<Vm> V = makeVm(TierStrategy::Deoptless);
  printf("mini-R JIT (deoptless reproduction). :help for commands.\n");

  std::string Line;
  char Buf[4096];
  while (true) {
    printf("> ");
    fflush(stdout);
    if (!fgets(Buf, sizeof(Buf), stdin))
      break;
    Line.assign(Buf);
    while (!Line.empty() && (Line.back() == '\n' || Line.back() == '\r'))
      Line.pop_back();
    if (Line.empty())
      continue;

    if (Line[0] == ':') {
      if (Line == ":quit" || Line == ":q")
        break;
      if (Line == ":stats") {
        printStats();
        continue;
      }
      if (Line.rfind(":strategy", 0) == 0) {
        std::string Which = Line.substr(Line.find(' ') + 1);
        V.reset(); // only one Vm may be active
        if (Which == "normal")
          V = makeVm(TierStrategy::Normal);
        else if (Which == "baseline")
          V = makeVm(TierStrategy::BaselineOnly);
        else
          V = makeVm(TierStrategy::Deoptless);
        printf("restarted with strategy %s (globals cleared)\n",
               Which.c_str());
        continue;
      }
      printf(":stats | :strategy <deoptless|normal|baseline> | :quit\n");
      continue;
    }

    Value Result;
    std::string Error;
    try {
      if (!V->eval(Line, Result, Error)) {
        printf("error: %s\n", Error.c_str());
        continue;
      }
      if (!Result.isNull())
        printf("[1] %s\n", Result.show().c_str());
    } catch (const RError &E) {
      printf("runtime error: %s\n", E.what());
    }
  }
  return 0;
}
