//===-- examples/volcano.cpp - The volcano ray tracer ----------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
// The paper's end-to-end application (Figs. 7/8): a terrain ray marcher
// whose interpolation function the "user" switches at run time — each
// switch is a call-target mis-speculation. Renders a small ASCII
// lightmap so you can see the program actually computes something, and
// prints how the VM coped with the interaction.
//
//   ./build/examples/volcano [--n <heightmap-size>]
//
//===----------------------------------------------------------------------===//

#include "support/stats.h"
#include "support/timer.h"
#include "vm/vm.h"

#include <cstdio>
#include <cstring>

using namespace rjit;

namespace {

const char *RayTracer = R"(
interp_bilinear <- function(h, n, fx, fy) {
  x0 <- floor(fx)
  y0 <- floor(fy)
  x1 <- min(x0 + 1, n - 1)
  y1 <- min(y0 + 1, n - 1)
  tx <- fx - x0
  ty <- fy - y0
  h00 <- h[[y0 * n + x0 + 1L]]
  h10 <- h[[y0 * n + x1 + 1L]]
  h01 <- h[[y1 * n + x0 + 1L]]
  h11 <- h[[y1 * n + x1 + 1L]]
  top <- h00 * (1 - tx) + h10 * tx
  bot <- h01 * (1 - tx) + h11 * tx
  top * (1 - ty) + bot * ty
}
interp_nearest <- function(h, n, fx, fy) {
  x0 <- floor(fx + 0.5)
  y0 <- floor(fy + 0.5)
  if (x0 > n - 1) x0 <- n - 1
  if (y0 > n - 1) y0 <- n - 1
  h[[y0 * n + x0 + 1L]]
}
make_volcano <- function(n) {
  h <- numeric(n * n)
  for (y in 1:n) {
    for (x in 1:n) {
      dx <- (x - n / 2) / n
      dy <- (y - n / 2) / n
      r <- dx * dx + dy * dy
      h[[(y - 1L) * n + x]] <- 40 * exp(-8 * r) - 25 * exp(-60 * r)
    }
  }
  h
}
shade_row <- function(h, n, interp, ry, sunx, suny) {
  row <- integer(n - 2L)
  for (rx in 1:(n - 2L)) {
    z <- interp(h, n, rx, ry) + 0.5
    fx <- rx + 0
    fy <- ry + 0
    lit <- 1L
    for (step in 1:8) {
      fx <- fx + sunx
      fy <- fy + suny
      z <- z + 0.8
      if (fx < 0 || fy < 0 || fx > n - 2 || fy > n - 2) break
      if (interp(h, n, fx, fy) > z) {
        lit <- 0L
        break
      }
    }
    row[[rx]] <- lit
  }
  row
}
)";

} // namespace

int main(int Argc, char **Argv) {
  long N = 26;
  for (int K = 1; K + 1 < Argc; ++K)
    if (!strcmp(Argv[K], "--n"))
      N = strtol(Argv[K + 1], nullptr, 10);

  Vm::Config Config;
  Config.Strategy = TierStrategy::Deoptless;
  Config.CompileThreshold = 2;
  Vm V(Config);
  V.eval(RayTracer);
  V.eval("hm <- make_volcano(" + std::to_string(N) + "L)");
  V.eval("sel <- interp_bilinear");

  // An "interactive session": the user drags the sun and occasionally
  // flips the interpolation selector (the deopt-triggering action).
  const char *Interp[] = {"interp_bilinear", "interp_nearest"};
  for (int Click = 0; Click < 6; ++Click) {
    if (Click == 2 || Click == 4) {
      V.eval(std::string("sel <- ") + Interp[Click == 2 ? 1 : 0]);
      printf("-- user switches interpolation to %s --\n",
             Interp[Click == 2 ? 1 : 0]);
    }
    double SunX = 0.4 + 0.1 * Click, SunY = 0.6 - 0.05 * Click;
    Timer T;
    printf("frame %d (sun %.2f,%.2f):\n", Click + 1, SunX, SunY);
    for (long Ry = 1; Ry + 2 <= N; Ry += 2) {
      Value Row = V.eval("shade_row(hm, " + std::to_string(N) + "L, sel, " +
                         std::to_string(Ry) + "L, " + std::to_string(SunX) +
                         ", " + std::to_string(SunY) + ")");
      printf("  ");
      for (int64_t X = 1; X <= Row.length(); ++X)
        putchar(extract2(Row, X).asIntUnchecked() ? '#' : '.');
      putchar('\n');
    }
    printf("  [%.1f ms; deopts=%llu continuations=%llu hits=%llu]\n",
           T.elapsedSeconds() * 1000,
           static_cast<unsigned long long>(stats().Deopts),
           static_cast<unsigned long long>(stats().DeoptlessCompiles),
           static_cast<unsigned long long>(stats().DeoptlessHits));
  }
  return 0;
}
