//===-- bench/fig06_misspeculation.cpp - Fig. 6: random invalidation -------===//
//
// Part of the deoptless reproduction. MIT license.
//
// Reproduces Fig. 6 (§5.1): run the Ř main benchmark suite with randomly
// invalidated assumptions (default 1 in 10k guard checks, the paper's
// rate) and measure the speedup of deoptless over normal deoptimization,
// per in-process iteration. Also reproduces the §5.1 memory experiment
// (--memory): change in the live-heap high-water mark (our stand-in for
// max RSS).
//
// Usage: fig06_misspeculation [--iters N] [--execs M] [--rate R]
//                             [--warmup W] [--memory]
//
//===----------------------------------------------------------------------===//

#include "suite/harness.h"
#include "runtime/value.h"
#include "support/stats.h"

#include <cstdio>

using namespace rjit;
using namespace rjit::suite;

namespace {

struct RunResult {
  std::vector<double> IterTimes; ///< averaged over executions
  uint64_t PeakHeap = 0;
  uint64_t Deopts = 0;
  uint64_t Injected = 0;
  VmStats Stats; ///< last execution's counters
};

RunResult runOne(const Program &P, TierStrategy S, uint64_t Rate, int Iters,
                 int Execs, int Warmup) {
  RunResult R;
  R.IterTimes.assign(Iters, 0.0);
  for (int E = 0; E < Execs; ++E) {
    Vm::Config Cfg = benchConfig(S);
    Cfg.InvalidationRate = Rate;
    Cfg.InvalidationSeed = 1000003 * (E + 1); // same seeds across modes
    Vm V(Cfg);
    V.eval(P.Setup);
    for (int K = 0; K < Warmup; ++K)
      V.eval(P.Driver);
    resetHeapPeak();
    resetStats();
    for (int K = 0; K < Iters; ++K)
      R.IterTimes[K] += timeOnce(V, P.Driver) / Execs;
    R.PeakHeap += heapStats().PeakBytes / Execs;
    R.Deopts += stats().Deopts;
    R.Injected += stats().InjectedFailures;
  }
  R.Stats = stats();
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  benchObsInit(Argc, Argv);
  int Iters = static_cast<int>(argLong(Argc, Argv, "--iters", 10));
  int Execs = static_cast<int>(argLong(Argc, Argv, "--execs", 2));
  int Warmup = static_cast<int>(argLong(Argc, Argv, "--warmup", 3));
  uint64_t Rate =
      static_cast<uint64_t>(argLong(Argc, Argv, "--rate", 2000));
  bool Memory = argFlag(Argc, Argv, "--memory");

  printf("# Fig. 6 — deoptless speedup under random mis-speculation "
         "(1 in %llu dynamic assumption checks invalidated; see EXPERIMENTS.md on the rate)\n",
         static_cast<unsigned long long>(Rate));
  printf("# %d iterations x %d executions, %d warmup iterations excluded "
         "(paper: 30 x 3, 5 warmup)\n",
         Iters, Execs, Warmup);
  if (!Memory)
    printf("%-26s %9s %9s | per-iteration speedups\n", "benchmark",
           "speedup", "deopts");
  else
    printf("%-26s %14s %14s %9s\n", "benchmark", "peak-normal",
           "peak-deoptless", "change");

  BenchReport R;
  R.Name = "fig06_misspeculation";
  R.Config = "iters=" + std::to_string(Iters) +
             " execs=" + std::to_string(Execs) +
             " warmup=" + std::to_string(Warmup) +
             " rate=" + std::to_string(Rate) +
             (Memory ? " memory" : "");

  size_t N;
  const Program *Suite = mainSuite(N);
  std::vector<double> Speedups;
  std::vector<double> MemChanges;
  for (size_t B = 0; B < N; ++B) {
    const Program &P = Suite[B];
    RunResult Normal =
        runOne(P, TierStrategy::Normal, Rate, Iters, Execs, Warmup);
    R.add(std::string(P.Name) + "/normal", Normal.IterTimes, Normal.Stats);
    RunResult Dl =
        runOne(P, TierStrategy::Deoptless, Rate, Iters, Execs, Warmup);
    R.add(std::string(P.Name) + "/deoptless", Dl.IterTimes, Dl.Stats);

    if (Memory) {
      double Change = Normal.PeakHeap
                          ? (static_cast<double>(Dl.PeakHeap) /
                                 static_cast<double>(Normal.PeakHeap) -
                             1.0) *
                                100.0
                          : 0.0;
      MemChanges.push_back(Change);
      printf("%-26s %14llu %14llu %+8.1f%%\n", P.Name,
             static_cast<unsigned long long>(Normal.PeakHeap),
             static_cast<unsigned long long>(Dl.PeakHeap), Change);
      continue;
    }

    // Per-iteration speedups (normalized per iteration index, as in the
    // paper's small dots); the large dot is the geometric mean.
    std::vector<double> PerIter(Iters);
    for (int K = 0; K < Iters; ++K)
      PerIter[K] = Normal.IterTimes[K] / Dl.IterTimes[K];
    double Mean = geomean(PerIter);
    Speedups.push_back(Mean);
    R.headline(std::string("speedup_") + P.Name, Mean);
    printf("%-26s %8.2fx %9llu |", P.Name, Mean,
           static_cast<unsigned long long>(Normal.Deopts));
    for (int K = 0; K < Iters; ++K)
      printf(" %.2f", PerIter[K]);
    printf("\n");
  }

  if (!Memory) {
    printf("\n# overall geomean speedup: %.2fx (paper: 1x..9.1x, most "
           "benchmarks > 1.9x)\n",
           geomean(Speedups));
    R.headline("speedup_geomean", geomean(Speedups));
  } else {
    double Sum = 0;
    for (double C : MemChanges)
      Sum += C;
    double MeanChange = MemChanges.empty() ? 0.0 : Sum / MemChanges.size();
    printf("\n# mean heap-peak change: %+.1f%% (paper: median -4%%)\n",
           MeanChange);
    R.headline("heap_change_pct_mean", MeanChange);
  }
  emitBenchArtifacts(R, Argc, Argv);
  return 0;
}
