//===-- bench/fig_ctxdispatch.cpp - Contextual dispatch ablation -----------===//
//
// Part of the deoptless reproduction. MIT license.
//
// Measures call-entry contextual dispatch on a polymorphic workload: one
// numeric kernel invoked with integer-vector, real-vector and scalar
// arguments from interleaved call sites (the volcano-app shape of Fig. 8,
// reduced to its essence). With a single optimized version (the seed's
// Normal strategy) the kernel's profile is polymorphic from the start, so
// the optimizer can only emit generic boxed operations. With contextual
// dispatch each observed CallContext gets its own version whose parameter
// types seed inference directly, so every caller runs typed, unboxed code.
//
// Usage: fig_ctxdispatch [--n <vector-length>] [--iters K]
//
//===----------------------------------------------------------------------===//

#include "suite/harness.h"
#include "support/stats.h"
#include "support/timer.h"

#include <cstdio>

using namespace rjit;
using namespace rjit::suite;

namespace {

const char *Setup = R"(
poly_dot <- function(a, b, n) {
  total <- 0L
  for (i in 1:n) total <- total + a[[i]] * b[[i]]
  total
}
)";

std::vector<double> runMode(bool ContextDispatch, long N, int Iters,
                            VmStats &Out) {
  Vm::Config Cfg = benchConfig(TierStrategy::Normal);
  Cfg.ContextDispatch = ContextDispatch;
  Vm V(Cfg);
  V.eval(Setup);
  V.eval("xi <- 1:" + std::to_string(N));
  V.eval("xr <- as.numeric(1:" + std::to_string(N) + ")");
  std::string NL = std::to_string(N) + "L";

  std::vector<double> Times;
  Times.reserve(Iters);
  for (int K = 0; K < Iters; ++K) {
    Timer T;
    // Interleaved polymorphic call sites: int x int, real x real, and a
    // mixed int x real pair; a scalar call exercises the scalar<=vector
    // rule of the context order.
    V.eval("ri <- poly_dot(xi, xi, " + NL + ")");
    V.eval("rr <- poly_dot(xr, xr, " + NL + ")");
    V.eval("rm <- poly_dot(xi, xr, " + NL + ")");
    V.eval("rs <- poly_dot(2L, 3L, 1L)");
    Times.push_back(T.elapsedSeconds());
  }
  Out = stats();
  return Times;
}

} // namespace

int main(int Argc, char **Argv) {
  benchObsInit(Argc, Argv);
  long N = argLong(Argc, Argv, "--n", 4000);
  int Iters = static_cast<int>(argLong(Argc, Argv, "--iters", 30));

  BenchReport R;
  R.Name = "fig_ctxdispatch";
  R.Config = "n=" + std::to_string(N) + " iters=" + std::to_string(Iters);

  VmStats Single, Ctx;
  std::vector<double> TSingle = runMode(false, N, Iters, Single);
  R.add("single-version", TSingle, Single);
  std::vector<double> TCtx = runMode(true, N, Iters, Ctx);
  R.add("ctx-dispatch", TCtx, Ctx);

  printf("# contextual dispatch on a polymorphic kernel "
         "(n=%ld, %d iterations, 4 call shapes per iteration)\n",
         N, Iters);
  printf("%-6s %14s %14s %10s\n", "iter", "single[s]", "ctx[s]", "speedup");
  for (int K = 0; K < Iters; ++K)
    printf("%-6d %14.6f %14.6f %9.2fx\n", K + 1, TSingle[K], TCtx[K],
           TSingle[K] / TCtx[K]);

  // Skip the first iterations (warmup/compile) for the steady-state mean.
  std::vector<double> SS(TSingle.begin() + Iters / 3, TSingle.end());
  std::vector<double> SC(TCtx.begin() + Iters / 3, TCtx.end());
  printf("\n# steady-state geomean speedup: %.2fx\n",
         geomean(SS) / geomean(SC));

  printStats("single-version", Single);
  printStats("ctx-dispatch", Ctx);
  R.headline("speedup_ctx", geomean(SS) / geomean(SC));
  emitBenchArtifacts(R, Argc, Argv);
  return 0;
}
