//===-- bench/fig_native.cpp - Native tier vs threaded interpreter ---------===//
//
// Part of the deoptless reproduction. MIT license.
//
// Three kernels, three claims:
//
//  * colsum, three modes: the hoisted-clean loop kernel of fig_licm,
//    widened to two independent accumulator chains — contextual inlining
//    devirtualized the accessor, LICM hoisted the invariant arithmetic,
//    the loop layer hoisted the identity guard — so what remains in the
//    inner loop is pure execution overhead, and the second chain keeps
//    the comparison throughput-bound (the template tier's per-op slot
//    round-trips saturate the load ports) rather than add-latency-bound.
//    interp vs v2 measures the whole native tier (headline:
//    speedup_native); template-only vs v2 isolates exactly the v2
//    features — register homes instead of per-op slot-array round-trips,
//    extract+arith fusion, direct linking — on identical LowCode
//    (headline: speedup_native_v2, gated at >= --v2bound, default 2.0x).
//
//  * axpy (template-only vs v2, untimed headline-wise): a register-
//    pressure arithmetic chain filling the XMM home pool; reported as
//    series data and the NativeRegSpills sanity signal.
//
//  * callsum (v2, inlining off): a non-inlined monomorphic call in a hot
//    loop. Not a timed headline (dispatch savings are real but modest and
//    host-noisy); the exit code instead asserts the linking machinery
//    demonstrably engaged: NativeLinkedTransfers > 0 with the interpreter
//    result reproduced exactly.
//
// The exit code asserts all acceptance bounds: >= --bound (default 2.0x)
// native-over-interp on colsum, >= --v2bound (default 2.0x) v2-over-
// template on colsum, NativeEnters/NativeCompiles > 0, NativeFusedOps > 0,
// NativeLinkedTransfers > 0, and result parity on every kernel. On hosts
// without the native backend the bench prints a skip marker and exits 0 —
// the binary must build and run everywhere.
//
// Usage: fig_native [--rows N] [--cols C] [--iters K] [--bound B(x100)]
//                   [--v2bound B(x100)]
//
//===----------------------------------------------------------------------===//

#include "native/native.h"
#include "suite/harness.h"
#include "support/stats.h"
#include "support/timer.h"

#include <algorithm>
#include <cstdio>

using namespace rjit;
using namespace rjit::suite;

namespace {

const char *ColsumSetup = R"(
get <- function(v, k) v[[k]]
colsum <- function(m, w, nr, nc, f) {
  s <- 0
  q <- 0
  for (j in 1:nc) {
    for (i in 1:nr) {
      x <- f(m, (j - 1L) * nr + i)
      y <- w[[i]]
      s <- s + x * y
      q <- q + x - y
    }
  }
  s + q
}
)";

const char *AxpySetup = R"(
axpy <- function(v, n, a) {
  s <- 0
  t <- 1
  u <- 0
  w <- 1
  for (i in 1:n) {
    x <- v[[i]] * a
    y <- x + 0.5
    z <- y * 0.25 + x
    s <- s + y
    t <- t + z * 0.5
    u <- u + (x - z) * 0.125
    w <- w + (y + z) * 0.0625
  }
  (s + t) + (u + w)
}
)";

const char *CallsSetup = R"(
inc <- function(x) x + 1L
callsum <- function(n) {
  s <- 0L
  for (i in 1:n) s <- s + inc(i)
  s
}
)";

/// One measured mode: fresh Vm under \p Cfg, Setup + data, \p Iters timed
/// runs of Call. Returns per-iteration seconds; the final rendered result
/// and the run's stats come back through the out-parameters.
std::vector<double> runMode(Vm::Config Cfg, const std::string &Setup,
                            const std::string &Data, const std::string &Call,
                            int Iters, VmStats &Out, std::string &Result) {
  Vm V(Cfg);
  V.eval(Setup);
  if (!Data.empty())
    V.eval(Data);
  std::vector<double> Times;
  Times.reserve(Iters);
  for (int K = 0; K < Iters; ++K)
    Times.push_back(timeOnce(V, Call));
  Result = V.eval("r").show();
  Out = stats();
  return Times;
}

Vm::Config modeConfig(bool Native, bool V2) {
  Vm::Config Cfg = benchConfig(TierStrategy::Normal);
  Cfg.Inlining = true;
  Cfg.LoopOpts.Enabled = true;
  Cfg.NativeTier = Native;
  Cfg.NativeV2.Regalloc = V2;
  Cfg.NativeV2.Fusion = V2;
  Cfg.NativeV2.Linking = V2;
  return Cfg;
}

/// Steady-state estimate: the best tail iteration. The tail skip drops
/// warmup/compilation; the minimum is the noise-robust statistic on a
/// shared host, where interference only ever inflates a measurement.
double steady(const std::vector<double> &Xs) {
  std::vector<double> Tail(Xs.begin() + Xs.size() / 3, Xs.end());
  return *std::min_element(Tail.begin(), Tail.end());
}

void printSeries(const char *Title, const char *A, const char *B,
                 const std::vector<double> &Ta,
                 const std::vector<double> &Tb) {
  printf("%s\n", Title);
  printf("%-6s %14s %14s\n", "iter", A, B);
  for (size_t K = 0; K < Ta.size(); ++K)
    printf("%-6zu %14.6f %14.6f\n", K + 1, Ta[K], Tb[K]);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Tracing = benchObsInit(Argc, Argv);
  long Rows = argLong(Argc, Argv, "--rows", 1000);
  long Cols = argLong(Argc, Argv, "--cols", 40);
  int Iters = static_cast<int>(argLong(Argc, Argv, "--iters", 30));
  double Bound = argLong(Argc, Argv, "--bound", 200) / 100.0;
  double V2Bound = argLong(Argc, Argv, "--v2bound", 200) / 100.0;

  if (!nativeBackendSupported()) {
    printf("# fig_native: native backend unsupported on this host "
           "(non-x86-64 or no RX mappings); skipping\n");
    return 0;
  }

  long N = Rows * Cols;
  BenchReport R;
  R.Name = "fig_native";
  R.Config = "rows=" + std::to_string(Rows) + " cols=" +
             std::to_string(Cols) + " iters=" + std::to_string(Iters);

  // --- colsum: interpreter vs template-only native vs v2 native ---------
  std::string Data = "d <- as.numeric(1:" + std::to_string(N) +
                     ")\nwv <- as.numeric(1:" + std::to_string(Rows) + ")";
  std::string ColsumCall = "r <- colsum(d, wv, " + std::to_string(Rows) +
                           "L, " + std::to_string(Cols) + "L, get)";
  VmStats InterpStats, TemplStats, NativeStats;
  std::string InterpR, TemplR, NativeR;
  std::vector<double> InterpT =
      runMode(modeConfig(false, false), ColsumSetup, Data, ColsumCall,
              Iters, InterpStats, InterpR);
  R.add("interp", InterpT, InterpStats);
  std::vector<double> TemplT =
      runMode(modeConfig(true, false), ColsumSetup, Data, ColsumCall, Iters,
              TemplStats, TemplR);
  R.add("template", TemplT, TemplStats);
  std::vector<double> NativeT =
      runMode(modeConfig(true, true), ColsumSetup, Data, ColsumCall, Iters,
              NativeStats, NativeR);
  R.add("native_v2", NativeT, NativeStats);

  // --- axpy: register-pressure chain, template vs v2 (series only) ------
  std::string AxpyCall =
      "r <- axpy(d, " + std::to_string(N) + "L, 1.0000001)";
  VmStats AxpyTemplStats, AxpyV2Stats;
  std::string AxpyTemplR, AxpyV2R;
  std::vector<double> AxpyTemplT =
      runMode(modeConfig(true, false), AxpySetup, Data, AxpyCall, Iters,
              AxpyTemplStats, AxpyTemplR);
  R.add("axpy_template", AxpyTemplT, AxpyTemplStats);
  std::vector<double> AxpyV2T =
      runMode(modeConfig(true, true), AxpySetup, Data, AxpyCall, Iters,
              AxpyV2Stats, AxpyV2R);
  R.add("axpy_v2", AxpyV2T, AxpyV2Stats);

  // --- callsum: direct linking engagement (not a timed headline) --------
  long CallN = N / 4;
  std::string CallsCall = "r <- callsum(" + std::to_string(CallN) + "L)";
  Vm::Config CallsInterpCfg = modeConfig(false, false);
  Vm::Config CallsTemplCfg = modeConfig(true, false);
  Vm::Config CallsV2Cfg = modeConfig(true, true);
  CallsInterpCfg.Inlining = false; // keep the call out of line
  CallsTemplCfg.Inlining = false;
  CallsV2Cfg.Inlining = false;
  VmStats CallsInterpStats, CallsTemplStats, CallsStats;
  std::string CallsInterpR, CallsTemplR, CallsR;
  int CallIters = Iters / 2 > 4 ? Iters / 2 : 4;
  std::vector<double> CallsInterpT =
      runMode(CallsInterpCfg, CallsSetup, "", CallsCall, CallIters,
              CallsInterpStats, CallsInterpR);
  std::vector<double> CallsTemplT =
      runMode(CallsTemplCfg, CallsSetup, "", CallsCall, CallIters,
              CallsTemplStats, CallsTemplR);
  R.add("calls_template", CallsTemplT, CallsTemplStats);
  std::vector<double> CallsT = runMode(CallsV2Cfg, CallsSetup, "",
                                       CallsCall, CallIters, CallsStats,
                                       CallsR);
  R.add("calls_v2", CallsT, CallsStats);

  printSeries("# colsum: native v2 vs threaded interpreter on the "
              "hoisted-clean kernel",
              "interp[s]", "v2[s]", InterpT, NativeT);
  double Speed = steady(InterpT) / steady(NativeT);
  printf("\n# steady-state (best-tail) speedup of the native backend: %.2fx\n\n",
         Speed);

  printSeries("# colsum: v2 (regalloc+fusion+linking) vs template-only "
              "native tier, identical LowCode",
              "template[s]", "v2[s]", TemplT, NativeT);
  double SpeedV2 = steady(TemplT) / steady(NativeT);
  printf("\n# steady-state (best-tail) speedup of v2 over the template tier: "
         "%.2fx\n\n",
         SpeedV2);

  printSeries("# axpy: register-pressure chain, template vs v2",
              "template[s]", "v2[s]", AxpyTemplT, AxpyV2T);
  double AxpySpeedV2 = steady(AxpyTemplT) / steady(AxpyV2T);
  printf("\n# axpy v2-over-template (series only, not gated): %.2fx\n\n",
         AxpySpeedV2);

  printSeries("# callsum: out-of-line monomorphic call, template vs v2 "
              "(direct linking)",
              "template[s]", "v2[s]", CallsTemplT, CallsT);
  double CallsSpeedV2 = steady(CallsTemplT) / steady(CallsT);
  printf("\n# callsum v2-over-template: %.2fx\n\n", CallsSpeedV2);

  printf("# native events: compiles %llu, enters %llu; v2 fused ops %llu, "
         "reg spills %llu; linked transfers %llu\n",
         static_cast<unsigned long long>(NativeStats.NativeCompiles +
                                         AxpyV2Stats.NativeCompiles),
         static_cast<unsigned long long>(NativeStats.NativeEnters +
                                         AxpyV2Stats.NativeEnters),
         static_cast<unsigned long long>(NativeStats.NativeFusedOps +
                                         AxpyV2Stats.NativeFusedOps),
         static_cast<unsigned long long>(AxpyV2Stats.NativeRegSpills),
         static_cast<unsigned long long>(CallsStats.NativeLinkedTransfers));

  // Untimed probe for the trace export: a short native run with injected
  // invalidation exercises the side-exit stubs and the deopt path, so the
  // Chrome trace demonstrates the full compile / native-enter /
  // native-side-exit / deopt event vocabulary. Runs after every measured
  // mode — it shares no Vm with them and cannot perturb the timings.
  if (Tracing) {
    Vm::Config Cfg = modeConfig(true, true);
    Cfg.InvalidationRate = 5000;
    Cfg.InvalidationSeed = 42;
    Vm V(Cfg);
    V.eval(ColsumSetup);
    V.eval(Data);
    for (int K = 0; K < 8; ++K)
      V.eval(ColsumCall);
  }

  R.headline("speedup_native", Speed);
  R.headline("speedup_native_v2", SpeedV2);
  emitBenchArtifacts(R, Argc, Argv);

  bool SameResult = InterpR == NativeR && TemplR == NativeR &&
                    AxpyTemplR == AxpyV2R && CallsInterpR == CallsR;
  if (!SameResult)
    printf("# FAIL: backends disagree: colsum interp=%s template=%s v2=%s; "
           "axpy template=%s v2=%s; callsum interp=%s v2=%s\n",
           InterpR.c_str(), TemplR.c_str(), NativeR.c_str(),
           AxpyTemplR.c_str(), AxpyV2R.c_str(), CallsInterpR.c_str(),
           CallsR.c_str());
  unsigned long long FusedOps =
      NativeStats.NativeFusedOps + AxpyV2Stats.NativeFusedOps;
  bool FeaturesEngaged =
      FusedOps > 0 && CallsStats.NativeLinkedTransfers > 0;
  if (!FeaturesEngaged)
    printf("# FAIL: v2 features never engaged (fused ops %llu, linked "
           "transfers %llu)\n",
           FusedOps,
           static_cast<unsigned long long>(
               CallsStats.NativeLinkedTransfers));
  bool Ok = SameResult && FeaturesEngaged && Speed >= Bound &&
            SpeedV2 >= V2Bound && NativeStats.NativeEnters > 0 &&
            NativeStats.NativeCompiles > 0;
  if (!Ok && SameResult && FeaturesEngaged)
    printf("# FAIL: expected >= %.2fx native speedup (got %.2fx) and >= "
           "%.2fx v2-over-template speedup (got %.2fx) with NativeEnters "
           "> 0\n",
           Bound, Speed, V2Bound, SpeedV2);
  return Ok ? 0 : 1;
}
