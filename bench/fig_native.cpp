//===-- bench/fig_native.cpp - Native tier vs threaded interpreter ---------===//
//
// Part of the deoptless reproduction. MIT license.
//
// Measures the x86-64 template-JIT backend on the hoisted-clean loop
// kernel of fig_licm: contextual inlining devirtualized the accessor,
// LICM hoisted the invariant arithmetic and the loop layer hoisted the
// identity guard to the preheader — what remains in the inner loop is
// exactly the slot machine's dispatch overhead, which is what the native
// tier removes (per-LowOp templates, no dispatch, no operand decode).
// Both modes run the same optimizer pipeline and the same LowCode; the
// only difference is the execution backend the code is prepared for.
//
// The exit code asserts the acceptance bound: >= --bound (default 2.0x)
// steady-state speedup of the native backend over the threaded
// interpreter, with NativeEnters > 0 (the JIT demonstrably ran). On hosts
// without the native backend the bench prints a skip marker and exits 0 —
// the binary must build and run everywhere.
//
// Usage: fig_native [--rows N] [--cols C] [--iters K] [--bound B(x100)]
//
//===----------------------------------------------------------------------===//

#include "native/native.h"
#include "suite/harness.h"
#include "support/stats.h"
#include "support/timer.h"

#include <cstdio>

using namespace rjit;
using namespace rjit::suite;

namespace {

const char *Setup = R"(
get <- function(v, k) v[[k]]
colsum <- function(m, nr, nc, f) {
  s <- 0
  for (j in 1:nc)
    for (i in 1:nr)
      s <- s + f(m, (j - 1L) * nr + i)
  s
}
)";

std::vector<double> runMode(bool Native, long Rows, long Cols, int Iters,
                            VmStats &Out, std::string &Result) {
  Vm::Config Cfg = benchConfig(TierStrategy::Normal);
  Cfg.Inlining = true;
  Cfg.LoopOpts.Enabled = true;
  Cfg.NativeTier = Native;
  Vm V(Cfg);
  V.eval(Setup);
  V.eval("d <- as.numeric(1:" + std::to_string(Rows * Cols) + ")");
  std::string Call = "r <- colsum(d, " + std::to_string(Rows) + "L, " +
                     std::to_string(Cols) + "L, get)";

  std::vector<double> Times;
  Times.reserve(Iters);
  for (int K = 0; K < Iters; ++K)
    Times.push_back(timeOnce(V, Call));
  Result = V.eval("r").show();
  Out = stats();
  return Times;
}

double steady(const std::vector<double> &Xs) {
  std::vector<double> Tail(Xs.begin() + Xs.size() / 3, Xs.end());
  return geomean(Tail);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Tracing = benchObsInit(Argc, Argv);
  long Rows = argLong(Argc, Argv, "--rows", 1000);
  long Cols = argLong(Argc, Argv, "--cols", 40);
  int Iters = static_cast<int>(argLong(Argc, Argv, "--iters", 30));
  double Bound = argLong(Argc, Argv, "--bound", 200) / 100.0;

  if (!nativeBackendSupported()) {
    printf("# fig_native: native backend unsupported on this host "
           "(non-x86-64 or no RX mappings); skipping\n");
    return 0;
  }

  BenchReport R;
  R.Name = "fig_native";
  R.Config = "rows=" + std::to_string(Rows) + " cols=" +
             std::to_string(Cols) + " iters=" + std::to_string(Iters);

  VmStats InterpStats, NativeStats;
  std::string InterpR, NativeR;
  std::vector<double> InterpT =
      runMode(false, Rows, Cols, Iters, InterpStats, InterpR);
  R.add("interp", InterpT, InterpStats);
  std::vector<double> NativeT =
      runMode(true, Rows, Cols, Iters, NativeStats, NativeR);
  R.add("native", NativeT, NativeStats);

  printf("# native tier vs threaded interpreter on the hoisted-clean "
         "colsum kernel (%ldx%ld, %d iterations, inlining+loopopts on)\n",
         Rows, Cols, Iters);
  printf("%-6s %14s %14s\n", "iter", "interp[s]", "native[s]");
  for (int K = 0; K < Iters; ++K)
    printf("%-6d %14.6f %14.6f\n", K + 1, InterpT[K], NativeT[K]);

  double Speed = steady(InterpT) / steady(NativeT);
  printf("\n# steady-state geomean speedup of the native backend: %.2fx\n",
         Speed);
  printf("# native events: compiles %llu, enters %llu; hoisted guards "
         "%llu\n",
         static_cast<unsigned long long>(NativeStats.NativeCompiles),
         static_cast<unsigned long long>(NativeStats.NativeEnters),
         static_cast<unsigned long long>(NativeStats.HoistedGuards));

  // Untimed probe for the trace export: a short native run with injected
  // invalidation exercises the side-exit stubs and the deopt path, so the
  // Chrome trace demonstrates the full compile / native-enter /
  // native-side-exit / deopt event vocabulary. Runs after both measured
  // modes — it shares no Vm with them and cannot perturb the timings.
  if (Tracing) {
    Vm::Config Cfg = benchConfig(TierStrategy::Normal);
    Cfg.Inlining = true;
    Cfg.LoopOpts.Enabled = true;
    Cfg.NativeTier = true;
    Cfg.InvalidationRate = 5000;
    Cfg.InvalidationSeed = 42;
    Vm V(Cfg);
    V.eval(Setup);
    V.eval("d <- as.numeric(1:" + std::to_string(Rows * Cols) + ")");
    for (int K = 0; K < 8; ++K)
      V.eval("r <- colsum(d, " + std::to_string(Rows) + "L, " +
             std::to_string(Cols) + "L, get)");
  }

  R.headline("speedup_native", Speed);
  emitBenchArtifacts(R, Argc, Argv);

  bool SameResult = InterpR == NativeR;
  if (!SameResult)
    printf("# FAIL: backends disagree: interp=%s native=%s\n",
           InterpR.c_str(), NativeR.c_str());
  bool Ok = SameResult && Speed >= Bound && NativeStats.NativeEnters > 0 &&
            NativeStats.NativeCompiles > 0;
  if (!Ok && SameResult)
    printf("# FAIL: expected >= %.2fx steady-state native speedup with "
           "NativeEnters > 0\n",
           Bound);
  return Ok ? 0 : 1;
}
