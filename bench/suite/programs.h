//===-- bench/suite/programs.h - The evaluation workloads --------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mini-R programs behind every experiment in the paper's evaluation:
/// the Ř main benchmark suite used for Fig. 6 (random mis-speculation),
/// the motivating `sum` (Fig. 4), the column-wise sum of Listing 8
/// (Fig. 10), the ray tracer (Figs. 8/9) and the three reoptimization
/// benchmarks (Fig. 11). Sizes are scaled down from the paper's testbed
/// so the whole harness runs in CI time; every program's default size is
/// a constant that benches can override by prepending an assignment.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_BENCH_SUITE_PROGRAMS_H
#define RJIT_BENCH_SUITE_PROGRAMS_H

#include <cstddef>
#include <string>

namespace rjit::suite {

/// One benchmark program: function definitions + per-iteration driver.
struct Program {
  const char *Name;
  const char *Setup;  ///< defines functions and data; run once
  const char *Driver; ///< one in-process iteration; returns a checksum
};

/// The Ř main-suite programs used by the Fig. 6 experiment (the paper
/// excludes nbody_naive there; so do we).
const Program *mainSuite(size_t &Count);

/// Looks up any program (main suite or the named extras below) by name;
/// returns null if unknown.
const Program *byName(const std::string &Name);

/// Extra named programs: "sum" (Fig. 4), "colsum" (Fig. 10), "raytrace"
/// (Figs. 8/9), "microbenchmark", "rsa", "shared" (Fig. 11).
const Program *extras(size_t &Count);

} // namespace rjit::suite

#endif // RJIT_BENCH_SUITE_PROGRAMS_H
