//===-- bench/suite/programs.cpp - The evaluation workloads ---------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "suite/programs.h"

using namespace rjit::suite;

namespace {

//===----------------------------------------------------------------------===//
// Ř main suite (Fig. 6). Ports of the benchmark-game programs the Ř suite
// uses, in the mini-R subset, with CI-sized defaults.
//===----------------------------------------------------------------------===//

const Program MainSuite[] = {
    {"binarytrees",
     R"(
bt_make <- function(d) {
  if (d == 0L) list(1L)
  else list(bt_make(d - 1L), bt_make(d - 1L), 1L)
}
bt_check <- function(t) {
  if (length(t) == 1L) 1L
  else 1L + bt_check(t[[1]]) + bt_check(t[[2]])
}
bt_run <- function(depth) {
  total <- 0L
  for (k in 1:3) {
    t <- bt_make(depth)
    total <- total + bt_check(t)
  }
  total
}
)",
     "bt_run(8L)"},

    {"Bounce_nonames",
     R"(
bounce_run <- function(nballs, steps) {
  set.seed(74L)
  x <- runif(nballs) * 500
  y <- runif(nballs) * 500
  vx <- runif(nballs) * 6 - 3
  vy <- runif(nballs) * 6 - 3
  bounces <- 0L
  for (s in 1:steps) {
    for (b in 1:nballs) {
      nx <- x[[b]] + vx[[b]]
      ny <- y[[b]] + vy[[b]]
      if (nx < 0 || nx > 500) {
        vx[[b]] <- -vx[[b]]
        bounces <- bounces + 1L
      }
      if (ny < 0 || ny > 500) {
        vy[[b]] <- -vy[[b]]
        bounces <- bounces + 1L
      }
      x[[b]] <- x[[b]] + vx[[b]]
      y[[b]] <- y[[b]] + vy[[b]]
    }
  }
  bounces
}
)",
     "bounce_run(60L, 60L)"},

    {"convolution",
     R"(
conv_run <- function(n, m) {
  a <- as.numeric(1:n) / n
  b <- as.numeric(1:m) / m
  out <- numeric(n + m - 1L)
  for (i in 1:n) {
    ai <- a[[i]]
    for (j in 1:m) {
      k <- i + j - 1L
      out[[k]] <- out[[k]] + ai * b[[j]]
    }
  }
  floor(sum(out) * 1000)
}
)",
     "conv_run(220L, 220L)"},

    {"fannkuchredux",
     R"(
fannkuch <- function(n) {
  perm1 <- 1:n
  count <- integer(n)
  maxflips <- 0L
  checksum <- 0L
  r <- n
  sign <- 1L
  repeat {
    if (perm1[[1]] != 1L) {
      perm <- perm1
      flips <- 0L
      repeat {
        k <- perm[[1]]
        if (k == 1L) break
        i <- 1L
        j <- k
        while (i < j) {
          tmp <- perm[[i]]
          perm[[i]] <- perm[[j]]
          perm[[j]] <- tmp
          i <- i + 1L
          j <- j - 1L
        }
        flips <- flips + 1L
      }
      if (flips > maxflips) maxflips <- flips
      checksum <- checksum + sign * flips
    }
    sign <- -sign
    # Next permutation in the fannkuch ordering.
    r <- 2L
    done <- FALSE
    while (r <= n) {
      if (count[[r]] < r - 1L) break
      count[[r]] <- 0L
      r <- r + 1L
    }
    if (r > n) {
      done <- TRUE
    } else {
      count[[r]] <- count[[r]] + 1L
      first <- perm1[[1]]
      i <- 1L
      while (i < r) {
        perm1[[i]] <- perm1[[i + 1L]]
        i <- i + 1L
      }
      perm1[[r]] <- first
    }
    if (done) break
  }
  checksum + maxflips
}
)",
     "fannkuch(7L)"},

    {"fasta_naive_2",
     R"(
fasta_run <- function(n) {
  set.seed(42L)
  probs <- c(0.27, 0.12, 0.12, 0.27, 0.08, 0.08, 0.06)
  cum <- numeric(length(probs))
  acc <- 0
  for (i in 1:length(probs)) {
    acc <- acc + probs[[i]]
    cum[[i]] <- acc
  }
  checksum <- 0L
  for (k in 1:n) {
    r <- runif(1L)
    code <- 1L
    for (i in 1:length(cum)) {
      if (r < cum[[i]]) {
        code <- i
        break
      }
    }
    checksum <- checksum + code
  }
  checksum
}
)",
     "fasta_run(12000L)"},

    {"fastaredux",
     R"(
fastaredux_run <- function(n) {
  set.seed(42L)
  probs <- c(0.27, 0.12, 0.12, 0.27, 0.08, 0.08, 0.06)
  lookup <- integer(64L)
  acc <- 0
  j <- 1L
  for (i in 1:64) {
    while (j < length(probs) && acc + probs[[j]] < i / 64) {
      acc <- acc + probs[[j]]
      j <- j + 1L
    }
    lookup[[i]] <- j
  }
  checksum <- 0L
  for (k in 1:n) {
    r <- runif(1L)
    slot <- as.integer(r * 64) + 1L
    checksum <- checksum + lookup[[slot]]
  }
  checksum
}
)",
     "fastaredux_run(20000L)"},

    {"flexclust",
     R"(
kmeans_assign <- function(px, py, cx, cy) {
  n <- length(px)
  k <- length(cx)
  total <- 0
  for (i in 1:n) {
    best <- 1L
    bestd <- 1e30
    for (c in 1:k) {
      dx <- px[[i]] - cx[[c]]
      dy <- py[[i]] - cy[[c]]
      d <- dx * dx + dy * dy
      if (d < bestd) {
        bestd <- d
        best <- c
      }
    }
    total <- total + best
  }
  total
}
flexclust_run <- function(n, k, iters) {
  set.seed(11L)
  px <- runif(n) * 10
  py <- runif(n) * 10
  cx <- runif(k) * 10
  cy <- runif(k) * 10
  s <- 0
  for (it in 1:iters) s <- s + kmeans_assign(px, py, cx, cy)
  s
}
)",
     "flexclust_run(250L, 8L, 8L)"},

    {"knucleotide",
     R"(
knucleotide_run <- function(n) {
  set.seed(7L)
  seqv <- integer(n)
  for (i in 1:n) seqv[[i]] <- as.integer(runif(1L) * 4)
  counts <- integer(256L)
  key <- 0L
  for (i in 1:n) {
    key <- (key * 4L + seqv[[i]]) %% 256L
    if (i >= 4L) {
      slot <- key + 1L
      counts[[slot]] <- counts[[slot]] + 1L
    }
  }
  best <- 0L
  for (i in 1:256) if (counts[[i]] > best) best <- counts[[i]]
  best + sum(counts)
}
)",
     "knucleotide_run(30000L)"},

    {"Mandelbrot",
     R"(
mandelbrot_run <- function(size, maxiter) {
  count <- 0L
  for (yi in 1:size) {
    ci <- 2 * yi / size - 1
    for (xi in 1:size) {
      cr <- 2 * xi / size - 1.5
      c <- cr + ci * 1i
      z <- 0 + 0i
      inside <- TRUE
      for (it in 1:maxiter) {
        z <- z * z + c
        if (Mod(z) > 2) {
          inside <- FALSE
          break
        }
      }
      if (inside) count <- count + 1L
    }
  }
  count
}
)",
     "mandelbrot_run(36L, 40L)"},

    {"nbody",
     R"(
nbody_run <- function(steps) {
  x <- c(0, 4.84, 8.34, 12.89, 15.37)
  y <- c(0, -1.16, 4.12, -15.11, -25.91)
  vx <- c(0, 0.0016, -0.0027, 0.0029, 0.0016)
  vy <- c(0, 0.0077, 0.0049, 0.0024, 0.0015)
  mass <- c(39.47, 0.038, 0.011, 0.000044, 0.0000052)
  n <- length(x)
  dt <- 0.01
  for (s in 1:steps) {
    for (i in 1:n) {
      ax <- 0
      ay <- 0
      for (j in 1:n) {
        if (i != j) {
          dx <- x[[j]] - x[[i]]
          dy <- y[[j]] - y[[i]]
          d2 <- dx * dx + dy * dy + 0.01
          inv <- mass[[j]] / (d2 * sqrt(d2))
          ax <- ax + dx * inv
          ay <- ay + dy * inv
        }
      }
      vx[[i]] <- vx[[i]] + ax * dt
      vy[[i]] <- vy[[i]] + ay * dt
    }
    for (i in 1:n) {
      x[[i]] <- x[[i]] + vx[[i]] * dt
      y[[i]] <- y[[i]] + vy[[i]] * dt
    }
  }
  floor((sum(x) + sum(y)) * 1000)
}
)",
     "nbody_run(800L)"},

    {"pidigits",
     R"(
# Fixed-precision long division standing in for the GMP bignums of the
# original (see DESIGN.md): digits of p/q in base 10, chunked remainders.
pidigits_run <- function(ndigits) {
  p <- 355L
  q <- 113L
  rem <- p %% q
  digitsum <- p %/% q
  for (k in 1:ndigits) {
    rem <- rem * 10L
    d <- rem %/% q
    rem <- rem %% q
    digitsum <- digitsum + d
    if (rem == 0L) rem <- (k * 7L + 1L) %% q
  }
  digitsum
}
)",
     "pidigits_run(40000L)"},

    {"regexdna",
     R"(
# Explicit pattern counting standing in for the regex engine (DESIGN.md).
regexdna_run <- function(n) {
  set.seed(19L)
  seqv <- integer(n)
  for (i in 1:n) seqv[[i]] <- as.integer(runif(1L) * 4)
  pats <- list(c(0L, 1L, 2L), c(3L, 3L, 0L, 1L), c(2L, 0L, 2L, 0L, 2L))
  total <- 0L
  for (p in 1:length(pats)) {
    pat <- pats[[p]]
    m <- length(pat)
    limit <- n - m + 1L
    for (i in 1:limit) {
      hit <- TRUE
      for (j in 1:m) {
        if (seqv[[i + j - 1L]] != pat[[j]]) {
          hit <- FALSE
          break
        }
      }
      if (hit) total <- total + 1L
    }
  }
  total
}
)",
     "regexdna_run(12000L)"},

    {"reversecomplement_naive",
     R"(
revcomp_run <- function(n) {
  set.seed(5L)
  seqv <- integer(n)
  for (i in 1:n) seqv[[i]] <- as.integer(runif(1L) * 4)
  comp <- integer(n)
  for (i in 1:n) comp[[i]] <- 3L - seqv[[n - i + 1L]]
  checksum <- 0L
  for (i in 1:n) checksum <- checksum + comp[[i]] * (i %% 7L)
  checksum
}
)",
     "revcomp_run(30000L)"},

    {"spectralnorm_math",
     R"(
sn_a <- function(i, j) 1 / ((i + j) * (i + j + 1) / 2 + i + 1)
sn_av <- function(v) {
  n <- length(v)
  out <- numeric(n)
  for (i in 1:n) {
    s <- 0
    for (j in 1:n) s <- s + sn_a(i - 1L, j - 1L) * v[[j]]
    out[[i]] <- s
  }
  out
}
sn_atv <- function(v) {
  n <- length(v)
  out <- numeric(n)
  for (i in 1:n) {
    s <- 0
    for (j in 1:n) s <- s + sn_a(j - 1L, i - 1L) * v[[j]]
    out[[i]] <- s
  }
  out
}
spectralnorm_run <- function(n, iters) {
  u <- numeric(n)
  for (i in 1:n) u[[i]] <- 1
  v <- numeric(n)
  for (it in 1:iters) {
    v <- sn_atv(sn_av(u))
    u <- sn_atv(sn_av(v))
  }
  vbv <- 0
  vv <- 0
  for (i in 1:n) {
    vbv <- vbv + u[[i]] * v[[i]]
    vv <- vv + v[[i]] * v[[i]]
  }
  floor(sqrt(vbv / vv) * 1e6)
}
)",
     "spectralnorm_run(40L, 4L)"},

    {"Storage",
     R"(
storage_build <- function(depth) {
  if (depth == 0L) {
    integer(4L)
  } else {
    node <- vector("list", 4L)
    for (i in 1:4) node[[i]] <- storage_build(depth - 1L)
    node
  }
}
storage_run <- function(reps, depth) {
  total <- 0L
  for (r in 1:reps) {
    t <- storage_build(depth)
    total <- total + length(t)
  }
  total
}
)",
     "storage_run(40L, 5L)"},
};

//===----------------------------------------------------------------------===//
// Extra programs for Figs. 4, 8, 9, 10 and 11.
//===----------------------------------------------------------------------===//

const Program Extras[] = {
    // Paper Listing 1 (Fig. 4): naive sum whose element type changes by
    // phase. The driver is supplied per-phase by the harness.
    {"sum",
     R"(
sum_data <- function(data) {
  total <- 0L
  for (i in 1:length(data)) total <- total + data[[i]]
  total
}
)",
     "sum_data(as.numeric(1:10000))"},

    // Paper Listing 8 (Fig. 10): column-wise sum over a "table" (a list of
    // column vectors), alternating integer and double columns.
    {"colsum",
     R"(
col_f <- function(colIndex, t) {
  dataCol <- t[[colIndex]]
  res <- 0
  for (i in 1:length(dataCol)) res <- res + dataCol[[i]]
  res
}
columnwiseSum <- function(t, cols) {
  res <- c()
  for (i in 1:cols) res[[i]] <- col_f(i, t)
  res
}
make_table <- function(cols, rows) {
  # Like the paper's table: the first float column appears only after the
  # compiler has warmed up on integer columns (their Fig. 10 shows the
  # deopt at the fifth column), alternating afterwards.
  t <- vector("list", cols)
  for (c in 1:cols) {
    if (c >= 5L && c %% 2L == 1L) t[[c]] <- as.numeric(1:rows)
    else t[[c]] <- 1:rows
  }
  t
}
)",
     "sum(columnwiseSum(make_table(10L, 2000L), 10L))"},

    // The ray tracer behind the volcano app (Figs. 8/9): a ray marcher
    // over a height map with a selectable interpolation function.
    {"raytrace",
     R"(
interp_bilinear <- function(h, n, fx, fy) {
  x0 <- floor(fx)
  y0 <- floor(fy)
  x1 <- min(x0 + 1, n - 1)
  y1 <- min(y0 + 1, n - 1)
  tx <- fx - x0
  ty <- fy - y0
  h00 <- h[[y0 * n + x0 + 1L]]
  h10 <- h[[y0 * n + x1 + 1L]]
  h01 <- h[[y1 * n + x0 + 1L]]
  h11 <- h[[y1 * n + x1 + 1L]]
  top <- h00 * (1 - tx) + h10 * tx
  bot <- h01 * (1 - tx) + h11 * tx
  top * (1 - ty) + bot * ty
}
interp_nearest <- function(h, n, fx, fy) {
  x0 <- floor(fx + 0.5)
  y0 <- floor(fy + 0.5)
  if (x0 > n - 1) x0 <- n - 1
  if (y0 > n - 1) y0 <- n - 1
  h[[y0 * n + x0 + 1L]]
}
make_heightmap <- function(n) {
  h <- numeric(n * n)
  for (y in 1:n) {
    for (x in 1:n) {
      dx <- (x - n / 2) / n
      dy <- (y - n / 2) / n
      h[[(y - 1L) * n + x]] <- 40 * exp(-8 * (dx * dx + dy * dy))
    }
  }
  h
}
make_heightmap_int <- function(n) {
  h <- integer(n * n)
  for (y in 1:n) {
    for (x in 1:n) {
      dx <- (x - n / 2) / n
      dy <- (y - n / 2) / n
      h[[(y - 1L) * n + x]] <- as.integer(40 * exp(-8 * (dx * dx + dy * dy)))
    }
  }
  h
}
cast_rays <- function(h, n, interp, sunx, suny) {
  light <- 0
  for (ry in 1:(n - 2L)) {
    for (rx in 1:(n - 2L)) {
      z <- interp(h, n, rx, ry) + 0.5
      fx <- rx + 0
      fy <- ry + 0
      lit <- TRUE
      for (step in 1:8) {
        fx <- fx + sunx
        fy <- fy + suny
        z <- z + 0.7
        if (fx < 0 || fy < 0 || fx > n - 2 || fy > n - 2) break
        if (interp(h, n, fx, fy) > z) {
          lit <- FALSE
          break
        }
      }
      if (lit) light <- light + 1
    }
  }
  light
}
render_image <- function(h, n) {
  acc <- 0
  for (i in 1:(n * n)) acc <- acc + h[[i]] * 0.25 + 1
  floor(acc)
}
)",
     "cast_rays(make_heightmap(28L), 28L, interp_bilinear, 0.7, 0.4)"},

    // Fig. 11 comparators (DLS'20 benchmarks).
    // (1) stale type feedback microbenchmark: the helper is trained on a
    // branchy profile that later stabilizes — no deopt is involved.
    {"microbenchmark",
     R"(
micro_f <- function(x, flag) {
  s <- 0
  for (i in 1:length(x)) {
    if (flag) s <- s + x[[i]] else s <- s - x[[i]]
  }
  s
}
)",
     "micro_f(as.numeric(1:3000), TRUE)"},

    // (2) RSA: modular exponentiation where the key parameter changes its
    // type (int -> double), causing a deopt + generic reoptimization.
    {"rsa",
     R"(
modpow <- function(base, exp, m) {
  result <- 1L
  b <- base %% m
  e <- exp
  while (e > 0L) {
    if (e %% 2L == 1L) result <- (result * b) %% m
    e <- e %/% 2L
    b <- (b * b) %% m
  }
  result
}
rsa_run <- function(key, n) {
  acc <- 0L
  for (i in 1:n) acc <- (acc + modpow(i %% 1000L + 2L, key, 30323L)) %% 30323L
  acc
}
)",
     "rsa_run(65L, 600L)"},

    // (3) shared helper: one function called by two callers with different
    // argument types merges unrelated feedback.
    {"shared",
     R"(
shared_helper <- function(v) {
  s <- 0
  for (i in 1:length(v)) s <- s + v[[i]]
  s
}
shared_caller_int <- function(n) shared_helper(1:n)
shared_caller_real <- function(n) shared_helper(as.numeric(1:n))
)",
     "shared_caller_int(2000L) + shared_caller_real(2000L)"},
};

} // namespace

const Program *rjit::suite::mainSuite(size_t &Count) {
  Count = sizeof(MainSuite) / sizeof(MainSuite[0]);
  return MainSuite;
}

const Program *rjit::suite::extras(size_t &Count) {
  Count = sizeof(Extras) / sizeof(Extras[0]);
  return Extras;
}

const Program *rjit::suite::byName(const std::string &Name) {
  size_t N;
  const Program *P = mainSuite(N);
  for (size_t K = 0; K < N; ++K)
    if (Name == P[K].Name)
      return &P[K];
  P = extras(N);
  for (size_t K = 0; K < N; ++K)
    if (Name == P[K].Name)
      return &P[K];
  return nullptr;
}
