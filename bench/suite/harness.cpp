//===-- bench/suite/harness.cpp - Benchmark harness helpers ---------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "suite/harness.h"
#include "support/timer.h"

#include <cmath>
#include <cstring>

using namespace rjit;
using namespace rjit::suite;

Vm::Config rjit::suite::benchConfig(TierStrategy S) {
  Vm::Config C;
  C.Strategy = S;
  C.CompileThreshold = 3;
  C.OsrThreshold = 100000;
  return C;
}

double rjit::suite::timeOnce(Vm &V, const std::string &Source) {
  Timer T;
  V.eval(Source);
  return T.elapsedSeconds();
}

std::vector<double>
rjit::suite::runIterations(const Program &P, Vm::Config Cfg, int Iterations,
                           const std::vector<std::string> &PerPhase) {
  Vm V(Cfg);
  V.eval(P.Setup);
  std::vector<double> Times;
  Times.reserve(Iterations);
  for (int K = 0; K < Iterations; ++K) {
    if (!PerPhase.empty())
      V.eval(PerPhase[K % PerPhase.size()]);
    Times.push_back(timeOnce(V, P.Driver));
  }
  return Times;
}

double rjit::suite::geomean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0;
  double S = 0;
  for (double X : Xs)
    S += std::log(X);
  return std::exp(S / static_cast<double>(Xs.size()));
}

long rjit::suite::argLong(int Argc, char **Argv, const std::string &Name,
                          long Def) {
  for (int K = 1; K + 1 < Argc; ++K)
    if (Name == Argv[K])
      return std::strtol(Argv[K + 1], nullptr, 10);
  return Def;
}

bool rjit::suite::argFlag(int Argc, char **Argv, const std::string &Name) {
  for (int K = 1; K < Argc; ++K)
    if (Name == Argv[K])
      return true;
  return false;
}

void rjit::suite::printStats(const char *Label, const VmStats &S) {
  printf("# stats[%s]: compiles %llu, deopts %llu, osr-in %llu, "
         "reopts %llu\n",
         Label, (unsigned long long)S.Compilations,
         (unsigned long long)S.Deopts, (unsigned long long)S.OsrInEntries,
         (unsigned long long)S.Reoptimizations);
  if (S.CtxVersions || S.CtxDispatchHits || S.CtxDispatchMisses) {
    uint64_t Total = S.CtxDispatchHits + S.CtxDispatchMisses;
    printf("# stats[%s]: ctx versions %llu, dispatch hits %llu, "
           "misses %llu (%.1f%% hit)\n",
           Label, (unsigned long long)S.CtxVersions,
           (unsigned long long)S.CtxDispatchHits,
           (unsigned long long)S.CtxDispatchMisses,
           Total ? 100.0 * static_cast<double>(S.CtxDispatchHits) /
                       static_cast<double>(Total)
                 : 0.0);
  }
  if (S.DeoptlessAttempts)
    printf("# stats[%s]: deoptless attempts %llu, hits %llu, "
           "compiles %llu, rejected %llu\n",
           Label, (unsigned long long)S.DeoptlessAttempts,
           (unsigned long long)S.DeoptlessHits,
           (unsigned long long)S.DeoptlessCompiles,
           (unsigned long long)S.DeoptlessRejected);
  if (S.InlinedCalls || S.MultiFrameDeopts || S.DeoptlessInlineDispatches)
    printf("# stats[%s]: inlined calls %llu, multi-frame deopts %llu, "
           "frames materialized %llu, inline-frame deoptless %llu\n",
           Label, (unsigned long long)S.InlinedCalls,
           (unsigned long long)S.MultiFrameDeopts,
           (unsigned long long)S.InlineFramesMaterialized,
           (unsigned long long)S.DeoptlessInlineDispatches);
  if (S.HoistedGuards || S.HoistedInstrs || S.EliminatedGuards)
    printf("# stats[%s]: hoisted guards %llu, hoisted instrs %llu, "
           "eliminated guards %llu\n",
           Label, (unsigned long long)S.HoistedGuards,
           (unsigned long long)S.HoistedInstrs,
           (unsigned long long)S.EliminatedGuards);
  if (S.AsyncCompiles || S.WarmupPausesAvoided)
    printf("# stats[%s]: async compiles %llu, queue depth high-water "
           "%llu, warmup pauses avoided %llu\n",
           Label, (unsigned long long)S.AsyncCompiles,
           (unsigned long long)S.CompileQueueDepth,
           (unsigned long long)S.WarmupPausesAvoided);
  if (S.NativeCompiles || S.NativeEnters || S.GraveyardSize)
    printf("# stats[%s]: native compiles %llu, native enters %llu, "
           "graveyard %llu\n",
           Label, (unsigned long long)S.NativeCompiles,
           (unsigned long long)S.NativeEnters,
           (unsigned long long)S.GraveyardSize);
}
