//===-- bench/suite/harness.cpp - Benchmark harness helpers ---------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "suite/harness.h"
#include "obs/trace.h"
#include "support/timer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

using namespace rjit;
using namespace rjit::suite;

Vm::Config rjit::suite::benchConfig(TierStrategy S) {
  Vm::Config C;
  C.Strategy = S;
  C.CompileThreshold = 3;
  C.OsrThreshold = 100000;
  return C;
}

double rjit::suite::timeOnce(Vm &V, const std::string &Source) {
  Timer T;
  V.eval(Source);
  uint64_t Ns = T.elapsedNanos();
  obs::metrics().Iteration.record(Ns);
  return static_cast<double>(Ns) * 1e-9;
}

std::vector<double>
rjit::suite::runIterations(const Program &P, Vm::Config Cfg, int Iterations,
                           const std::vector<std::string> &PerPhase) {
  Vm V(Cfg);
  V.eval(P.Setup);
  std::vector<double> Times;
  Times.reserve(Iterations);
  for (int K = 0; K < Iterations; ++K) {
    if (!PerPhase.empty())
      V.eval(PerPhase[K % PerPhase.size()]);
    Times.push_back(timeOnce(V, P.Driver));
  }
  return Times;
}

double rjit::suite::geomean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0;
  double S = 0;
  for (double X : Xs)
    S += std::log(X);
  return std::exp(S / static_cast<double>(Xs.size()));
}

long rjit::suite::argLong(int Argc, char **Argv, const std::string &Name,
                          long Def) {
  for (int K = 1; K + 1 < Argc; ++K)
    if (Name == Argv[K])
      return std::strtol(Argv[K + 1], nullptr, 10);
  return Def;
}

bool rjit::suite::argFlag(int Argc, char **Argv, const std::string &Name) {
  for (int K = 1; K < Argc; ++K)
    if (Name == Argv[K])
      return true;
  return false;
}

const char *rjit::suite::argStr(int Argc, char **Argv,
                                const std::string &Name, const char *Def) {
  for (int K = 1; K + 1 < Argc; ++K)
    if (Name == Argv[K])
      return Argv[K + 1];
  return Def;
}

void rjit::suite::printStats(const char *Label, const VmStats &S) {
  // Registry-driven: the schema (names, membership) lives in
  // obs/metrics.cpp, shared with the JSON emission below — per-bench
  // printf lists cannot drift from the serialized counters.
  printf("# stats[%s]:", Label);
  bool Any = false;
  obs::MetricsRegistry::forEachCounter(S,
                                       [&](const char *Name, uint64_t V) {
                                         if (!V)
                                           return;
                                         printf("%s %s=%llu",
                                                Any ? "," : "", Name,
                                                (unsigned long long)V);
                                         Any = true;
                                       });
  obs::MetricsRegistry::forEachGauge(
      S, [&](const char *Name, uint64_t V, uint64_t High) {
        if (!V && !High)
          return;
        printf("%s %s=%llu(hw %llu)", Any ? "," : "", Name,
               (unsigned long long)V, (unsigned long long)High);
        Any = true;
      });
  printf("%s\n", Any ? "" : " (all zero)");
}

//===----------------------------------------------------------------------===//
// Machine-readable bench reports
//===----------------------------------------------------------------------===//

BenchSeries &BenchReport::add(const std::string &Label,
                              const std::vector<double> &Times,
                              const VmStats &Stats) {
  // Snapshot the live registry now: the next mode's Vm resets it.
  return add(Label, Times, Stats, obs::metrics());
}

BenchSeries &BenchReport::add(const std::string &Label,
                              const std::vector<double> &Times,
                              const VmStats &Stats,
                              const obs::VmMetrics &Metrics) {
  BenchSeries S;
  S.Label = Label;
  S.Times = Times;
  S.Stats = Stats;
  S.Metrics = Metrics;
  Series.push_back(std::move(S));
  return Series.back();
}

void BenchReport::headline(const std::string &Key, double Value) {
  Headlines.push_back({Key, Value});
}

bool rjit::suite::benchObsInit(int Argc, char **Argv) {
  if (!argStr(Argc, Argv, "--trace", nullptr))
    return false;
  // A process-lifetime ref: every Vm the bench creates (whatever its own
  // Trace config) records into the rings emitBenchArtifacts exports.
  obs::traceBegin();
  return true;
}

namespace {

/// Exact sample quantile (nearest-rank) of an unsorted series.
double exactQuantile(std::vector<double> Xs, double Q) {
  if (Xs.empty())
    return 0;
  std::sort(Xs.begin(), Xs.end());
  size_t Rank = static_cast<size_t>(
      std::ceil(Q * static_cast<double>(Xs.size())));
  if (Rank < 1)
    Rank = 1;
  return Xs[Rank - 1];
}

/// Steady state: geomean of the last two thirds (the warmup protocol the
/// fig benches already use).
double steadyState(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0;
  std::vector<double> Tail(Xs.begin() + Xs.size() / 3, Xs.end());
  return geomean(Tail);
}

void jsonEscape(FILE *F, const std::string &S) {
  for (char C : S)
    if (C == '"' || C == '\\')
      fprintf(F, "\\%c", C);
    else if (static_cast<unsigned char>(C) < 0x20)
      fprintf(F, "\\u%04x", C);
    else
      fputc(C, F);
}

void emitSeries(FILE *F, const BenchSeries &S) {
  fprintf(F, "    {\n      \"label\": \"");
  jsonEscape(F, S.Label);
  fprintf(F, "\",\n      \"iterations\": %zu,\n", S.Times.size());
  fprintf(F, "      \"times_s\": [");
  for (size_t K = 0; K < S.Times.size(); ++K)
    fprintf(F, "%s%.9f", K ? ", " : "", S.Times[K]);
  fprintf(F, "],\n");
  double Sum = 0;
  for (double T : S.Times)
    Sum += T;
  fprintf(F,
          "      \"mean_s\": %.9f,\n      \"steady_s\": %.9f,\n"
          "      \"p50_s\": %.9f,\n      \"p90_s\": %.9f,\n"
          "      \"p99_s\": %.9f,\n",
          S.Times.empty() ? 0 : Sum / static_cast<double>(S.Times.size()),
          steadyState(S.Times), exactQuantile(S.Times, 0.50),
          exactQuantile(S.Times, 0.90), exactQuantile(S.Times, 0.99));

  fprintf(F, "      \"counters\": {");
  bool Any = false;
  obs::MetricsRegistry::forEachCounter(
      S.Stats, [&](const char *Name, uint64_t V) {
        if (!V)
          return;
        fprintf(F, "%s\"%s\": %llu", Any ? ", " : "", Name,
                static_cast<unsigned long long>(V));
        Any = true;
      });
  fprintf(F, "},\n      \"gauges\": {");
  Any = false;
  obs::MetricsRegistry::forEachGauge(
      S.Stats, [&](const char *Name, uint64_t V, uint64_t High) {
        if (!V && !High)
          return;
        fprintf(F, "%s\"%s\": {\"value\": %llu, \"high_water\": %llu}",
                Any ? ", " : "", Name, static_cast<unsigned long long>(V),
                static_cast<unsigned long long>(High));
        Any = true;
      });
  fprintf(F, "},\n      \"histograms\": {");
  Any = false;
  obs::MetricsRegistry::forEachHistogram(
      S.Metrics, [&](const char *Name, const obs::LatencyHistogram &H) {
        if (!H.count())
          return;
        fprintf(F,
                "%s\"%s\": {\"count\": %llu, \"p50\": %llu, \"p90\": "
                "%llu, \"p99\": %llu, \"max\": %llu, \"mean\": %.1f}",
                Any ? ", " : "", Name,
                static_cast<unsigned long long>(H.count()),
                static_cast<unsigned long long>(H.p50()),
                static_cast<unsigned long long>(H.p90()),
                static_cast<unsigned long long>(H.p99()),
                static_cast<unsigned long long>(H.max()), H.mean());
        Any = true;
      });
  fprintf(F, "}");
  if (!S.Extras.empty()) {
    fprintf(F, ",\n      \"extras\": {");
    for (size_t K = 0; K < S.Extras.size(); ++K) {
      fprintf(F, "%s\"", K ? ", " : "");
      jsonEscape(F, S.Extras[K].first);
      fprintf(F, "\": %.6f", S.Extras[K].second);
    }
    fprintf(F, "}");
  }
  fprintf(F, "\n    }");
}

} // namespace

void rjit::suite::emitBenchArtifacts(const BenchReport &R, int Argc,
                                     char **Argv) {
  std::string Default = "BENCH_" + R.Name + ".json";
  const char *Path = argStr(Argc, Argv, "--json", Default.c_str());
  FILE *F = fopen(Path, "w");
  if (!F) {
    fprintf(stderr, "# bench: cannot write %s\n", Path);
  } else {
    fprintf(F, "{\n  \"name\": \"");
    jsonEscape(F, R.Name);
    fprintf(F, "\",\n  \"config\": \"");
    jsonEscape(F, R.Config);
    fprintf(F, "\",\n  \"headlines\": {");
    for (size_t K = 0; K < R.Headlines.size(); ++K) {
      fprintf(F, "%s\"", K ? ", " : "");
      jsonEscape(F, R.Headlines[K].first);
      fprintf(F, "\": %.6f", R.Headlines[K].second);
    }
    fprintf(F, "},\n  \"series\": [\n");
    for (size_t K = 0; K < R.Series.size(); ++K) {
      emitSeries(F, R.Series[K]);
      fprintf(F, "%s\n", K + 1 < R.Series.size() ? "," : "");
    }
    fprintf(F, "  ]\n}\n");
    fclose(F);
    printf("# bench report: %s\n", Path);
  }

  if (const char *TracePath = argStr(Argc, Argv, "--trace", nullptr)) {
    if (obs::writeChromeTrace(TracePath))
      printf("# chrome trace: %s (%llu events, %llu dropped)\n", TracePath,
             static_cast<unsigned long long>(obs::traceEventCount()),
             static_cast<unsigned long long>(obs::traceDropped()));
    else
      fprintf(stderr, "# bench: cannot write %s\n", TracePath);
  }
}
