//===-- bench/suite/harness.cpp - Benchmark harness helpers ---------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "suite/harness.h"
#include "support/timer.h"

#include <cmath>
#include <cstring>

using namespace rjit;
using namespace rjit::suite;

Vm::Config rjit::suite::benchConfig(TierStrategy S) {
  Vm::Config C;
  C.Strategy = S;
  C.CompileThreshold = 3;
  C.OsrThreshold = 100000;
  return C;
}

double rjit::suite::timeOnce(Vm &V, const std::string &Source) {
  Timer T;
  V.eval(Source);
  return T.elapsedSeconds();
}

std::vector<double>
rjit::suite::runIterations(const Program &P, Vm::Config Cfg, int Iterations,
                           const std::vector<std::string> &PerPhase) {
  Vm V(Cfg);
  V.eval(P.Setup);
  std::vector<double> Times;
  Times.reserve(Iterations);
  for (int K = 0; K < Iterations; ++K) {
    if (!PerPhase.empty())
      V.eval(PerPhase[K % PerPhase.size()]);
    Times.push_back(timeOnce(V, P.Driver));
  }
  return Times;
}

double rjit::suite::geomean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0;
  double S = 0;
  for (double X : Xs)
    S += std::log(X);
  return std::exp(S / static_cast<double>(Xs.size()));
}

long rjit::suite::argLong(int Argc, char **Argv, const std::string &Name,
                          long Def) {
  for (int K = 1; K + 1 < Argc; ++K)
    if (Name == Argv[K])
      return std::strtol(Argv[K + 1], nullptr, 10);
  return Def;
}

bool rjit::suite::argFlag(int Argc, char **Argv, const std::string &Name) {
  for (int K = 1; K < Argc; ++K)
    if (Name == Argv[K])
      return true;
  return false;
}
