//===-- bench/suite/harness.h - Benchmark harness helpers --------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared harness for the figure benches: strategy configuration,
/// iteration timing, and the paper's measurement protocol (N in-process
/// iterations times M executions, per-iteration normalization).
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_BENCH_SUITE_HARNESS_H
#define RJIT_BENCH_SUITE_HARNESS_H

#include "suite/programs.h"
#include "support/stats.h"
#include "vm/vm.h"

#include <string>
#include <vector>

namespace rjit::suite {

/// Builds the Vm configuration for a strategy with bench-wide defaults.
Vm::Config benchConfig(TierStrategy S);

/// Seconds per in-process iteration of one program under one strategy.
/// Creates a fresh Vm, evaluates Setup, then times \p Iterations runs of
/// Driver. \p Mutate (optional) runs between iterations (phase changes).
std::vector<double> runIterations(const Program &P, Vm::Config Cfg,
                                  int Iterations,
                                  const std::vector<std::string> &PerPhase =
                                      {});

/// Runs \p Source once in \p V and returns elapsed seconds.
double timeOnce(Vm &V, const std::string &Source);

/// Geometric mean of positive values.
double geomean(const std::vector<double> &Xs);

/// Simple argv flag lookup: `--name value`; returns Def when absent.
long argLong(int Argc, char **Argv, const std::string &Name, long Def);
bool argFlag(int Argc, char **Argv, const std::string &Name);

/// Prints the tiering effectiveness counters of one run: compilations,
/// context-dispatch version/hit/miss counters and the deoptless
/// continuation dispatch counters (skipping zero groups).
void printStats(const char *Label, const VmStats &S);

} // namespace rjit::suite

#endif // RJIT_BENCH_SUITE_HARNESS_H
