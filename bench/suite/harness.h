//===-- bench/suite/harness.h - Benchmark harness helpers --------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared harness for the figure benches: strategy configuration,
/// iteration timing, and the paper's measurement protocol (N in-process
/// iterations times M executions, per-iteration normalization).
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_BENCH_SUITE_HARNESS_H
#define RJIT_BENCH_SUITE_HARNESS_H

#include "obs/metrics.h"
#include "suite/programs.h"
#include "support/stats.h"
#include "vm/vm.h"

#include <string>
#include <utility>
#include <vector>

namespace rjit::suite {

/// Builds the Vm configuration for a strategy with bench-wide defaults.
Vm::Config benchConfig(TierStrategy S);

/// Seconds per in-process iteration of one program under one strategy.
/// Creates a fresh Vm, evaluates Setup, then times \p Iterations runs of
/// Driver. \p Mutate (optional) runs between iterations (phase changes).
std::vector<double> runIterations(const Program &P, Vm::Config Cfg,
                                  int Iterations,
                                  const std::vector<std::string> &PerPhase =
                                      {});

/// Runs \p Source once in \p V and returns elapsed seconds.
double timeOnce(Vm &V, const std::string &Source);

/// Geometric mean of positive values.
double geomean(const std::vector<double> &Xs);

/// Simple argv flag lookup: `--name value`; returns Def when absent.
long argLong(int Argc, char **Argv, const std::string &Name, long Def);
bool argFlag(int Argc, char **Argv, const std::string &Name);
/// String-valued `--name value` lookup; returns Def when absent.
const char *argStr(int Argc, char **Argv, const std::string &Name,
                   const char *Def);

/// Prints the tiering effectiveness counters of one run: compilations,
/// context-dispatch version/hit/miss counters and the deoptless
/// continuation dispatch counters (skipping zero groups).
void printStats(const char *Label, const VmStats &S);

//===----------------------------------------------------------------------===//
// Machine-readable bench reports (BENCH_<name>.json) and shared obs flags
//===----------------------------------------------------------------------===//

/// One measured series of a bench: a mode label, its per-iteration times,
/// and the stats/metrics snapshots captured after the mode's run.
struct BenchSeries {
  std::string Label;
  std::vector<double> Times; ///< seconds per iteration, in order
  VmStats Stats;
  obs::VmMetrics Metrics;
  /// Extra named scalars serialized into the series object (an "extras"
  /// JSON block). Benches whose per-sample data is too large to inline as
  /// Times — the server bench records hundreds of thousands of request
  /// latencies into histograms — publish their pre-computed percentiles
  /// here instead.
  std::vector<std::pair<std::string, double>> Extras;
};

/// A bench's full report. Fill with add()/headline() as modes complete,
/// then hand to emitBenchArtifacts().
struct BenchReport {
  std::string Name;   ///< bench name; the default artifact is
                      ///< BENCH_<Name>.json in the working directory
  std::string Config; ///< parameter echo, e.g. "rows=1000 cols=40 iters=30"

  std::vector<BenchSeries> Series;
  std::vector<std::pair<std::string, double>> Headlines;

  /// Records a completed mode. Call immediately after the mode ran: the
  /// process-wide histograms (obs::metrics()) are snapshotted here, and
  /// the next mode's Vm resets them.
  BenchSeries &add(const std::string &Label,
                   const std::vector<double> &Times, const VmStats &Stats);

  /// Like add(), but with an explicit histogram snapshot instead of the
  /// live process-wide metrics() — for benches that drain per-phase
  /// snapshots themselves (MetricsRegistry::snapshotAndReset) and must
  /// not re-read the registry after the phase ended.
  BenchSeries &add(const std::string &Label,
                   const std::vector<double> &Times, const VmStats &Stats,
                   const obs::VmMetrics &Metrics);

  /// Records a named scalar result (speedups, ratios — the
  /// machine-independent numbers bench/compare_bench.py diffs).
  void headline(const std::string &Key, double Value);
};

/// Handles the shared obs flags once at the top of main():
/// `--trace <path>` holds a process-lifetime tracing ref (every Vm the
/// bench creates records into it) — emitBenchArtifacts() writes the
/// Chrome trace there. Returns true when tracing was requested.
bool benchObsInit(int Argc, char **Argv);

/// Writes BENCH_<Name>.json (path overridable with `--json <path>`) with
/// the per-series timings, exact time percentiles, nonzero stats counters
/// and latency histograms, plus the headlines; also writes the Chrome
/// trace when benchObsInit() saw `--trace`.
void emitBenchArtifacts(const BenchReport &R, int Argc, char **Argv);

} // namespace rjit::suite

#endif // RJIT_BENCH_SUITE_HARNESS_H
