//===-- bench/server_harness.cpp - Request-driven server harness ----------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "server_harness.h"

#include "compile/pool.h"
#include "runtime/value.h"
#include "support/fnv.h"
#include "support/rng.h"
#include "support/timer.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

using namespace rjit;
using namespace rjit::suite;

const char *rjit::suite::serverPhaseName(ServerPhase P) {
  return serverPhaseName(static_cast<unsigned>(P));
}

const char *rjit::suite::serverPhaseName(unsigned P) {
  static const char *const Names[NumServerPhases] = {"warmup", "steady",
                                                     "storm", "recovery"};
  return P < NumServerPhases ? Names[P] : "?";
}

namespace {

/// Reusable all-or-nothing rendezvous for Clients + 1 (the orchestrator)
/// participants. Clients park here between phases, which is what makes
/// the orchestrator's phase-boundary stats/metrics draining quiescent.
class PhaseBarrier {
public:
  explicit PhaseBarrier(unsigned N) : Count(N) {}

  void arriveAndWait() {
    std::unique_lock<std::mutex> L(Mu);
    unsigned G = Gen;
    if (++Waiting == Count) {
      Waiting = 0;
      ++Gen;
      Cv.notify_all();
      return;
    }
    Cv.wait(L, [&] { return Gen != G; });
  }

private:
  std::mutex Mu;
  std::condition_variable Cv;
  const unsigned Count;
  unsigned Waiting = 0;
  unsigned Gen = 0;
};

/// The query service every client installs in its Vm: volcano-style
/// aggregations from the fig04/fig10 kernel family over shared data. The
/// int/real mix keeps type feedback honest (warmup sees real phase
/// changes, not just injection), while staying deterministic.
const char *ServerSetup = R"(
q_sum <- function(data) {
  total <- 0L
  for (i in 1:length(data)) total <- total + data[[i]]
  total
}
q_filter_sum <- function(data, lo) {
  total <- 0
  for (i in 1:length(data)) {
    x <- data[[i]]
    if (x > lo) total <- total + x
  }
  total
}
q_dot <- function(a, b) {
  total <- 0
  for (i in 1:length(a)) total <- total + a[[i]] * b[[i]]
  total
}
q_minmax <- function(data) {
  mn <- data[[1]]
  mx <- data[[1]]
  for (i in 1:length(data)) {
    x <- data[[i]]
    if (x < mn) mn <- x
    if (x > mx) mx <- x
  }
  mx - mn
}
q_churn <- function(n) {
  mk <- function(i) {
    h <- function(x) x + i
    h(i)
  }
  s <- 0L
  for (i in 1:n) s <- s + mk(i)
  s
}
ints <- 1:256
reals <- as.numeric(1:256) * 0.5
)";

/// The request mix, weighted by repetition. Drawing an index below() the
/// table size is the whole per-request decision, so the schedule is a
/// pure function of the client RNG stream.
const char *const RequestMix[] = {
    "q_sum(ints)",
    "q_sum(ints)",
    "q_sum(ints)",
    "q_sum(reals)",
    "q_sum(reals)",
    "q_filter_sum(reals, 64)",
    "q_dot(reals, ints)",
    "q_minmax(ints)",
    // Closure churn: every mk(i) call strands one Env<->closure reference
    // cycle that only the safepoint cycle collector can reclaim — the
    // memory-pressure half of the serving scenario.
    "q_churn(32L)",
};
constexpr size_t RequestMixSize =
    sizeof(RequestMix) / sizeof(RequestMix[0]);

void mixString(FnvHasher &H, const std::string &S) {
  for (char C : S)
    H.mix(static_cast<uint8_t>(C));
}

} // namespace

ServerResult rjit::suite::runServer(const ServerConfig &SC) {
  ServerResult R;
  R.ClientChecksums.assign(SC.Clients, 0);

  const unsigned PhaseRequests[NumServerPhases] = {
      SC.WarmupRequests, SC.SteadyRequests, SC.StormRequests,
      SC.RecoveryRequests};

  CompilerPool Pool(SC.CompilerThreads);
  PhaseBarrier Sync(SC.Clients + 1);
  std::vector<Vm *> Vms(SC.Clients, nullptr);
  std::vector<std::array<std::vector<double>, NumServerPhases>> RawTimes(
      SC.Clients);
  std::mutex ErrorsMu;
  std::vector<std::string> Errors;

  auto Client = [&](unsigned Id) {
    Vm::Config C = SC.Base;
    C.BackgroundCompile = true;
    C.Pool = &Pool;
    Vm V(C);
    bool Broken = false;
    try {
      V.eval(ServerSetup);
    } catch (const std::exception &E) {
      std::lock_guard<std::mutex> L(ErrorsMu);
      Errors.push_back("client " + std::to_string(Id) +
                       " setup failed: " + E.what());
      Broken = true;
    }
    Vms[Id] = &V; // published to the chaos thread by the barrier below
    uint64_t ClientSeed =
        SC.Seed * 0x9E3779B97F4A7C15ull + (Id + 1) * 0x100000001B3ull;
    Rng Gen(ClientSeed ? ClientSeed : 1);
    FnvHasher Sum;
    Sync.arriveAndWait(); // ready: every client constructed and set up

    for (unsigned P = 0; P < NumServerPhases; ++P) {
      Sync.arriveAndWait(); // phase start
      for (unsigned K = 0; K < PhaseRequests[P] && !Broken; ++K) {
        if (P == static_cast<unsigned>(ServerPhase::Storm) &&
            SC.InjectEveryRequests && K % SC.InjectEveryRequests == 0)
          V.injectInvalidation();
        const char *Req = RequestMix[Gen.below(RequestMixSize)];
        try {
          Timer T;
          Value Res = V.eval(Req);
          uint64_t Ns = T.elapsedNanos();
          R.Phases[P].Latency.record(Ns);
          if (SC.CollectTimes)
            RawTimes[Id][P].push_back(static_cast<double>(Ns) * 1e-9);
          mixString(Sum, Res.show());
        } catch (const std::exception &E) {
          std::lock_guard<std::mutex> L(ErrorsMu);
          Errors.push_back("client " + std::to_string(Id) + " request '" +
                           Req + "' failed: " + E.what());
          Broken = true;
        }
      }
      Sync.arriveAndWait(); // phase end
    }
    R.ClientChecksums[Id] = Sum.H;
  };

  std::vector<std::thread> Threads;
  Threads.reserve(SC.Clients);
  for (unsigned Id = 0; Id < SC.Clients; ++Id)
    Threads.emplace_back(Client, Id);

  Sync.arriveAndWait(); // ready
  // Attribution baseline: clients are parked at the first phase-start
  // barrier, so everything recorded before this point (setup compiles) is
  // discarded rather than charged to warmup.
  VmStats Prev = stats();
  (void)obs::MetricsRegistry::snapshotAndReset();

  std::thread Chaos;
  std::atomic<bool> ChaosStop{false};
  for (unsigned P = 0; P < NumServerPhases; ++P) {
    // Clients are parked at the phase-start barrier, so resetting the
    // heap high-water gauge here is quiescent: the phase's PeakBytes
    // measures only this phase's traffic.
    resetHeapPeak();
    Sync.arriveAndWait(); // phase start: clients begin issuing
    const bool StormPhase = P == static_cast<unsigned>(ServerPhase::Storm);
    if (StormPhase && SC.ChaosIntervalUs) {
      ChaosStop.store(false, std::memory_order_relaxed);
      Chaos = std::thread([&] {
        // The rate-driven injector: walks every executor's Vm from this
        // non-executor thread. Vm::injectInvalidation is the one Vm entry
        // point with that contract.
        while (!ChaosStop.load(std::memory_order_relaxed)) {
          for (Vm *V : Vms)
            V->injectInvalidation();
          std::this_thread::sleep_for(
              std::chrono::microseconds(SC.ChaosIntervalUs));
        }
      });
    }
    Sync.arriveAndWait(); // phase end: every client parked again
    if (Chaos.joinable()) {
      ChaosStop.store(true, std::memory_order_relaxed);
      Chaos.join();
    }
    VmStats Now = stats();
    R.Phases[P].Stats = Now - Prev;
    Prev = Now;
    R.Phases[P].Metrics = obs::MetricsRegistry::snapshotAndReset();
    R.Phases[P].HeapPeakBytes = heapStats().PeakBytes.load();
    R.Phases[P].HeapLiveBytes = heapStats().LiveBytes.load();
  }

  for (std::thread &T : Threads)
    T.join();

  FnvHasher Combined;
  for (uint64_t C : R.ClientChecksums)
    Combined.mix(C);
  R.Checksum = Combined.H;
  for (unsigned P = 0; P < NumServerPhases; ++P) {
    R.TotalRequests += R.Phases[P].Latency.count();
    if (SC.CollectTimes)
      for (unsigned Id = 0; Id < SC.Clients; ++Id)
        R.Phases[P].Times.insert(R.Phases[P].Times.end(),
                                 RawTimes[Id][P].begin(),
                                 RawTimes[Id][P].end());
  }
  if (!Errors.empty()) {
    std::string All;
    for (const std::string &E : Errors)
      All += E + "\n";
    rerror("server harness: " + All);
  }
  return R;
}
