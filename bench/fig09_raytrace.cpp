//===-- bench/fig09_raytrace.cpp - Fig. 9: ray-tracing variants ------------===//
//
// Part of the deoptless reproduction. MIT license.
//
// Reproduces Fig. 9: three ray-tracer experiments, each with 10 iterations
// and a phase change at iteration 5, repeated over 3 runs. The first two
// variants change the type of the height map (int vector -> double
// vector); "simplified" uses the manually inlined interpolation, "type"
// the full version. The "fun" variant changes the numerical interpolation
// function instead (a call-target deopt). Reported is deoptless' speedup
// over normal per iteration.
//
// Usage: fig09_raytrace [--n <heightmap-size>] [--runs R]
//
//===----------------------------------------------------------------------===//

#include "suite/harness.h"

#include <cstdio>

using namespace rjit;
using namespace rjit::suite;

namespace {

// The "simplified" variant: interpolation manually inlined into the
// marcher, as in the paper.
const char *SimplifiedSetup = R"(
cast_simple <- function(h, n, sunx, suny) {
  light <- 0
  for (ry in 1:(n - 2L)) {
    for (rx in 1:(n - 2L)) {
      z <- h[[(ry - 1L) * n + rx]] + 0.5
      fx <- rx + 0
      fy <- ry + 0
      lit <- TRUE
      for (step in 1:8) {
        fx <- fx + sunx
        fy <- fy + suny
        z <- z + 0.7
        if (fx < 1 || fy < 1 || fx > n - 1 || fy > n - 1) break
        ix <- floor(fx)
        iy <- floor(fy)
        if (h[[(iy - 1L) * n + ix]] > z) {
          lit <- FALSE
          break
        }
      }
      if (lit) light <- light + 1
    }
  }
  light
}
)";

struct Variant {
  const char *Name;
  std::string Extra;       ///< appended to the raytrace setup
  std::string InitPhase;   ///< iterations 1..4
  std::string SwitchPhase; ///< from iteration 5
  std::string Driver;
};

std::vector<Variant> variants(long N) {
  std::string Ns = std::to_string(N) + "L";
  return {
      {"simplified", SimplifiedSetup,
       "hm <- make_heightmap_int(" + Ns + ")",
       "hm <- make_heightmap(" + Ns + ")",
       "cast_simple(hm, " + Ns + ", 0.7, 0.4)"},
      {"type", "",
       "hm <- make_heightmap_int(" + Ns + ")",
       "hm <- make_heightmap(" + Ns + ")",
       "cast_rays(hm, " + Ns + ", interp_bilinear, 0.7, 0.4)"},
      {"fun", "",
       "hm <- make_heightmap(" + Ns + ")\ninterp <- interp_bilinear",
       "interp <- interp_nearest",
       "cast_rays(hm, " + Ns + ", interp, 0.7, 0.4)"},
  };
}

std::vector<double> runMode(const Variant &Var, TierStrategy S,
                            VmStats &Out) {
  const Program *P = byName("raytrace");
  Vm V(benchConfig(S));
  V.eval(P->Setup);
  if (!Var.Extra.empty())
    V.eval(Var.Extra);
  std::vector<double> Times;
  V.eval(Var.InitPhase);
  resetStats();
  for (int K = 0; K < 10; ++K) {
    if (K == 5)
      V.eval(Var.SwitchPhase);
    Times.push_back(timeOnce(V, Var.Driver));
  }
  Out = stats();
  return Times;
}

} // namespace

int main(int Argc, char **Argv) {
  benchObsInit(Argc, Argv);
  long N = argLong(Argc, Argv, "--n", 28);
  int Runs = static_cast<int>(argLong(Argc, Argv, "--runs", 3));

  BenchReport Report;
  Report.Name = "fig09_raytrace";
  Report.Config = "n=" + std::to_string(N) + " runs=" + std::to_string(Runs);

  printf("# Fig. 9 — ray-tracing variants, 10 iterations, phase change at "
         "iteration 6, %d runs\n",
         Runs);
  printf("# deoptless speedup over normal, per iteration\n");
  for (const Variant &Var : variants(N)) {
    printf("%-12s", Var.Name);
    std::vector<double> Acc(10, 0.0);
    for (int R = 0; R < Runs; ++R) {
      VmStats Sn, Sd;
      std::vector<double> Tn = runMode(Var, TierStrategy::Normal, Sn);
      if (R == 0)
        Report.add(std::string(Var.Name) + "/normal", Tn, Sn);
      std::vector<double> Td = runMode(Var, TierStrategy::Deoptless, Sd);
      if (R == 0)
        Report.add(std::string(Var.Name) + "/deoptless", Td, Sd);
      for (int K = 0; K < 10; ++K)
        Acc[K] += (Tn[K] / Td[K]) / Runs;
    }
    for (int K = 0; K < 10; ++K)
      printf(" %5.2f", Acc[K]);
    printf("\n");
    Report.headline(std::string("speedup_") + Var.Name, geomean(Acc));
  }
  printf("\n# (paper: deoptless consistently alleviates the slowdown at "
         "the phase change, ~1.0-1.2x)\n");
  emitBenchArtifacts(Report, Argc, Argv);
  return 0;
}
