//===-- bench/fig_inline.cpp - Speculative inlining ablation ---------------===//
//
// Part of the deoptless reproduction. MIT license.
//
// Measures feedback-driven speculative inlining on a call-heavy kernel: a
// dot product whose per-element combination lives in a tiny leaf function,
// so without inlining every loop iteration pays a full VM dispatch (context
// computation, version-table scan, argument boxing). With inlining the leaf
// is spliced into the caller under its callee-identity guard, the combined
// body is typed and unboxed end to end, and the only per-iteration cost is
// the arithmetic itself. Runs the ablation under both Normal and Deoptless
// so the frame-chain metadata's cost (guards carry synthesized caller
// frames) is visible in both deopt regimes.
//
// Usage: fig_inline [--n <vector-length>] [--iters K]
//
//===----------------------------------------------------------------------===//

#include "suite/harness.h"
#include "support/stats.h"
#include "support/timer.h"

#include <cstdio>

using namespace rjit;
using namespace rjit::suite;

namespace {

const char *Setup = R"(
step <- function(x, y) x * y + 0.5
dot <- function(v, w, n) {
  t <- 0
  for (i in 1:n) t <- t + step(v[[i]], w[[i]])
  t
}
)";

std::vector<double> runMode(TierStrategy S, bool Inlining, long N, int Iters,
                            VmStats &Out) {
  Vm::Config Cfg = benchConfig(S);
  Cfg.Inlining = Inlining;
  Vm V(Cfg);
  V.eval(Setup);
  V.eval("xa <- as.numeric(1:" + std::to_string(N) + ")");
  V.eval("xb <- as.numeric(" + std::to_string(N) + ":1)");
  std::string Call = "r <- dot(xa, xb, " + std::to_string(N) + "L)";

  std::vector<double> Times;
  Times.reserve(Iters);
  for (int K = 0; K < Iters; ++K) {
    Timer T;
    V.eval(Call);
    Times.push_back(T.elapsedSeconds());
  }
  Out = stats();
  return Times;
}

double steady(const std::vector<double> &Xs) {
  std::vector<double> Tail(Xs.begin() + Xs.size() / 3, Xs.end());
  return geomean(Tail);
}

} // namespace

int main(int Argc, char **Argv) {
  benchObsInit(Argc, Argv);
  long N = argLong(Argc, Argv, "--n", 4000);
  int Iters = static_cast<int>(argLong(Argc, Argv, "--iters", 30));

  BenchReport R;
  R.Name = "fig_inline";
  R.Config = "n=" + std::to_string(N) + " iters=" + std::to_string(Iters);

  struct Mode {
    const char *Label;
    TierStrategy S;
    bool Inline;
    VmStats Stats;
    std::vector<double> Times;
  } Modes[] = {
      {"normal", TierStrategy::Normal, false, {}, {}},
      {"normal+inline", TierStrategy::Normal, true, {}, {}},
      {"deoptless", TierStrategy::Deoptless, false, {}, {}},
      {"deoptless+inline", TierStrategy::Deoptless, true, {}, {}},
  };
  for (Mode &M : Modes) {
    M.Times = runMode(M.S, M.Inline, N, Iters, M.Stats);
    R.add(M.Label, M.Times, M.Stats);
  }

  printf("# speculative inlining on a call-heavy kernel "
         "(n=%ld, %d iterations, one leaf call per element)\n",
         N, Iters);
  printf("%-6s %14s %14s %14s %14s\n", "iter", "normal[s]", "norm+inl[s]",
         "deoptless[s]", "deopl+inl[s]");
  for (int K = 0; K < Iters; ++K)
    printf("%-6d %14.6f %14.6f %14.6f %14.6f\n", K + 1, Modes[0].Times[K],
           Modes[1].Times[K], Modes[2].Times[K], Modes[3].Times[K]);

  printf("\n# steady-state geomean speedup from inlining: "
         "normal %.2fx, deoptless %.2fx\n",
         steady(Modes[0].Times) / steady(Modes[1].Times),
         steady(Modes[2].Times) / steady(Modes[3].Times));

  for (Mode &M : Modes)
    printStats(M.Label, M.Stats);
  R.headline("speedup_inline_normal",
             steady(Modes[0].Times) / steady(Modes[1].Times));
  R.headline("speedup_inline_deoptless",
             steady(Modes[2].Times) / steady(Modes[3].Times));
  emitBenchArtifacts(R, Argc, Argv);
  return 0;
}
