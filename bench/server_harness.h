//===-- bench/server_harness.h - Request-driven server harness ---*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reusable closed-loop traffic generator + chaos injector for the
/// many-executor serving scenario: N client threads, each driving its own
/// Vm over a seeded mixed query workload (volcano-style aggregations from
/// the fig04/fig10 kernel family), all sharing one CompilerPool. The run
/// is phased — cold-start warmup, steady state, a *deopt storm* (injected
/// invalidation of hot versions mid-traffic), recovery — and every
/// request's latency lands in a per-phase log-bucketed histogram, with the
/// VM's own duration metrics (deopt_pause_ns, queue_wait_ns, ...) drained
/// losslessly at each phase boundary via MetricsRegistry::snapshotAndReset.
///
/// Deoptless's headline claim is *tail latency*: recompilation pauses and
/// deopt storms are what it removes, and single-threaded steady-state
/// throughput benches cannot see that. This harness measures p50/p99/p999
/// per phase so `fig_server` can gate "deoptless-on beats deoptless-off on
/// storm-phase p99" in its exit code, and doubles as the deterministic
/// many-executor chaos test in tests/server_test.cpp: with the wall-clock
/// chaos injector off, every request, injection point and result is a
/// pure function of (Seed, client id, request index), so per-client result
/// checksums must be byte-identical across backends, strategies and
/// safepoint intervals.
///
/// Storm injection has two independent knobs:
///  * InjectEveryRequests — each client arms one injected invalidation
///    (Vm::injectInvalidation on its own Vm) every Nth of its storm-phase
///    requests. Request-count-driven: deterministic, machine-independent.
///  * ChaosIntervalUs — a dedicated chaos thread walks every client Vm and
///    injects at this wall-clock rate, *from outside the executors*. This
///    is the rate-driven half: nondeterministic in timing but — by the
///    §5.1 invariant — never in results.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_BENCH_SERVER_HARNESS_H
#define RJIT_BENCH_SERVER_HARNESS_H

#include "obs/metrics.h"
#include "support/stats.h"
#include "vm/vm.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace rjit::suite {

/// The four phases of a server run, in execution order.
enum class ServerPhase : unsigned { Warmup, Steady, Storm, Recovery };
constexpr unsigned NumServerPhases = 4;
const char *serverPhaseName(ServerPhase P);
const char *serverPhaseName(unsigned P);

struct ServerConfig {
  unsigned Clients = 8;         ///< executor threads, one Vm each
  unsigned CompilerThreads = 2; ///< shared background-compile pool size
  uint64_t Seed = 12345;        ///< workload + injection schedule seed

  /// Closed-loop requests per client in each phase.
  unsigned WarmupRequests = 50;
  unsigned SteadyRequests = 200;
  unsigned StormRequests = 200;
  unsigned RecoveryRequests = 150;

  /// Deterministic storm injection: every Nth storm-phase request of each
  /// client arms one injected invalidation on that client's Vm (0 = off).
  unsigned InjectEveryRequests = 6;
  /// Rate-driven storm injection: a chaos thread injects into every
  /// client Vm each interval, concurrently with dispatch (0 = off).
  /// Turning this on makes the run nondeterministic in *timing* only.
  unsigned ChaosIntervalUs = 0;

  /// Base Vm configuration (Strategy, NativeTier, SafepointInterval, ...).
  /// The harness forces BackgroundCompile on and points every client at
  /// the shared pool; everything else is taken as given.
  Vm::Config Base;

  /// Also collect raw per-request seconds per phase (memory ~ one double
  /// per request; the histograms are always recorded).
  bool CollectTimes = false;
};

/// One phase's measurements, aggregated across all clients.
struct ServerPhaseReport {
  obs::LatencyHistogram Latency; ///< per-request wall time, nanoseconds
  VmStats Stats;                 ///< counter deltas over the phase
  obs::VmMetrics Metrics;        ///< VM histograms drained at the boundary
  std::vector<double> Times;     ///< raw seconds (CollectTimes only)
  /// Process heap high-water over the phase and the live bytes left when
  /// it ended, read at the quiescent phase boundaries (the peak gauge is
  /// reset at each phase start). The q_churn mix entry strands reference
  /// cycles on every request, so a bounded high-water across
  /// storm->recovery is direct evidence the safepoint cycle collector is
  /// keeping up under concurrent traffic.
  uint64_t HeapPeakBytes = 0;
  uint64_t HeapLiveBytes = 0;
};

struct ServerResult {
  std::array<ServerPhaseReport, NumServerPhases> Phases;
  /// FNV-1a over every request result (its printed value), per client in
  /// client-id order. With ChaosIntervalUs == 0 these are a pure function
  /// of (Seed, client id) — the determinism surface tests/server_test.cpp
  /// gates; with the chaos thread on they must *still* match, because
  /// injected invalidation never changes results.
  std::vector<uint64_t> ClientChecksums;
  uint64_t Checksum = 0; ///< order-preserving fold of ClientChecksums
  uint64_t TotalRequests = 0;

  const ServerPhaseReport &phase(ServerPhase P) const {
    return Phases[static_cast<unsigned>(P)];
  }
};

/// Runs the full phased traffic session and returns the per-phase report.
/// Blocks until every client thread (and the chaos injector, if enabled)
/// has finished and joined.
ServerResult runServer(const ServerConfig &C);

} // namespace rjit::suite

#endif // RJIT_BENCH_SERVER_HARNESS_H
