//===-- bench/fig_server.cpp - Server tail latency under deopt storms -----===//
//
// Part of the deoptless reproduction. MIT license.
//
// The tail-latency experiment the single-threaded fig benches cannot
// express: N closed-loop client threads drive a mixed query workload
// against per-thread Vms sharing one compiler pool, through four phases —
// cold-start warmup, steady state, a *deopt storm* (injected invalidation
// of hot versions mid-traffic, both request-count-driven and, by default,
// from a wall-clock chaos thread), and recovery. Per-request latency lands
// in per-phase histograms; the report compares Normal (deoptless off:
// every storm hit retires the version, re-warms and recompiles) against
// Deoptless (storm hits dispatch to retained continuations).
//
// The headline gate is the paper's central claim made operational: the
// process exits non-zero unless deoptless-on beats deoptless-off on
// storm-phase p99.
//
// Usage: fig_server [--clients N] [--compilers N] [--seed S]
//                   [--warmup N] [--steady N] [--storm N] [--recovery N]
//                   [--inject-every N] [--chaos-us N]
//                   [--json path] [--trace path]
//
//===----------------------------------------------------------------------===//

#include "server_harness.h"
#include "suite/harness.h"

#include <cstdio>
#include <string>

using namespace rjit;
using namespace rjit::suite;

namespace {

ServerConfig configFromArgs(int Argc, char **Argv) {
  ServerConfig SC;
  SC.Clients = static_cast<unsigned>(argLong(Argc, Argv, "--clients", 8));
  SC.CompilerThreads =
      static_cast<unsigned>(argLong(Argc, Argv, "--compilers", 2));
  SC.Seed = static_cast<uint64_t>(argLong(Argc, Argv, "--seed", 12345));
  SC.WarmupRequests =
      static_cast<unsigned>(argLong(Argc, Argv, "--warmup", 100));
  SC.SteadyRequests =
      static_cast<unsigned>(argLong(Argc, Argv, "--steady", 400));
  SC.StormRequests =
      static_cast<unsigned>(argLong(Argc, Argv, "--storm", 400));
  SC.RecoveryRequests =
      static_cast<unsigned>(argLong(Argc, Argv, "--recovery", 300));
  SC.InjectEveryRequests =
      static_cast<unsigned>(argLong(Argc, Argv, "--inject-every", 6));
  // The rate-driven half of the storm defaults on in the bench (off in
  // the deterministic test): both modes get the same wall-clock rate, and
  // results are injection-invariant, so only latency is affected.
  SC.ChaosIntervalUs =
      static_cast<unsigned>(argLong(Argc, Argv, "--chaos-us", 200));
  SC.Base.CompileThreshold = 3;
  return SC;
}

ServerResult runMode(TierStrategy S, const ServerConfig &Base) {
  ServerConfig SC = Base;
  SC.Base.Strategy = S;
  return runServer(SC);
}

/// Publishes one phase of one mode as a Times-free series whose extras
/// block carries the histogram percentiles (per-request times would bloat
/// the JSON by several orders of magnitude).
void addPhases(BenchReport &R, const char *Mode, const ServerResult &SR) {
  for (unsigned P = 0; P < NumServerPhases; ++P) {
    const ServerPhaseReport &Ph = SR.Phases[P];
    BenchSeries &S = R.add(std::string(Mode) + "/" + serverPhaseName(P),
                           {}, Ph.Stats, Ph.Metrics);
    S.Extras.push_back(
        {"requests", static_cast<double>(Ph.Latency.count())});
    S.Extras.push_back({"p50_ns", static_cast<double>(Ph.Latency.p50())});
    S.Extras.push_back({"p90_ns", static_cast<double>(Ph.Latency.p90())});
    S.Extras.push_back({"p99_ns", static_cast<double>(Ph.Latency.p99())});
    S.Extras.push_back(
        {"p999_ns", static_cast<double>(Ph.Latency.p999())});
    S.Extras.push_back({"max_ns", static_cast<double>(Ph.Latency.max())});
    S.Extras.push_back({"mean_ns", Ph.Latency.mean()});
    // Heap pressure per phase: the q_churn mix entry strands reference
    // cycles on every request, so a bounded high-water across
    // storm->recovery shows the safepoint cycle collector keeping up.
    S.Extras.push_back(
        {"heap_peak_bytes", static_cast<double>(Ph.HeapPeakBytes)});
    S.Extras.push_back(
        {"heap_live_bytes", static_cast<double>(Ph.HeapLiveBytes)});
  }
}

void printMode(const char *Mode, const ServerResult &SR) {
  printf("%-10s %10s %12s %12s %12s %12s %12s\n", Mode, "requests",
         "p50", "p90", "p99", "p999", "max");
  for (unsigned P = 0; P < NumServerPhases; ++P) {
    const obs::LatencyHistogram &H = SR.Phases[P].Latency;
    printf("  %-8s %10llu %10.1fus %10.1fus %10.1fus %10.1fus %10.1fus\n",
           serverPhaseName(P), static_cast<unsigned long long>(H.count()),
           static_cast<double>(H.p50()) * 1e-3,
           static_cast<double>(H.p90()) * 1e-3,
           static_cast<double>(H.p99()) * 1e-3,
           static_cast<double>(H.p999()) * 1e-3,
           static_cast<double>(H.max()) * 1e-3);
    printStats((std::string(Mode) + "/" + serverPhaseName(P)).c_str(),
               SR.Phases[P].Stats);
  }
}

double ratio(uint64_t Num, uint64_t Den) {
  return Den ? static_cast<double>(Num) / static_cast<double>(Den) : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  benchObsInit(Argc, Argv);
  ServerConfig SC = configFromArgs(Argc, Argv);

  BenchReport R;
  R.Name = "fig_server";
  R.Config = "clients=" + std::to_string(SC.Clients) +
             " compilers=" + std::to_string(SC.CompilerThreads) +
             " warmup=" + std::to_string(SC.WarmupRequests) +
             " steady=" + std::to_string(SC.SteadyRequests) +
             " storm=" + std::to_string(SC.StormRequests) +
             " recovery=" + std::to_string(SC.RecoveryRequests) +
             " inject_every=" + std::to_string(SC.InjectEveryRequests) +
             " chaos_us=" + std::to_string(SC.ChaosIntervalUs) +
             " seed=" + std::to_string(SC.Seed);

  printf("# fig_server — %u clients, shared %u-thread compiler pool, "
         "storm: 1-in-%u requests + chaos every %uus\n",
         SC.Clients, SC.CompilerThreads, SC.InjectEveryRequests,
         SC.ChaosIntervalUs);

  ServerResult Normal = runMode(TierStrategy::Normal, SC);
  printMode("normal", Normal);
  addPhases(R, "normal", Normal);

  ServerResult Dl = runMode(TierStrategy::Deoptless, SC);
  printMode("deoptless", Dl);
  addPhases(R, "deoptless", Dl);

  // Both modes ran the identical request schedule; their transcripts must
  // agree (injected invalidation never changes results). A mismatch is a
  // correctness bug, not a measurement artifact.
  if (Normal.Checksum != Dl.Checksum) {
    fprintf(stderr,
            "FAIL: result checksums diverge between modes "
            "(normal %016llx, deoptless %016llx)\n",
            static_cast<unsigned long long>(Normal.Checksum),
            static_cast<unsigned long long>(Dl.Checksum));
    return 2;
  }

  const obs::LatencyHistogram &NSteady =
      Normal.phase(ServerPhase::Steady).Latency;
  const obs::LatencyHistogram &NStorm =
      Normal.phase(ServerPhase::Storm).Latency;
  const obs::LatencyHistogram &DSteady =
      Dl.phase(ServerPhase::Steady).Latency;
  const obs::LatencyHistogram &DStorm =
      Dl.phase(ServerPhase::Storm).Latency;

  double StormP99Speedup = ratio(NStorm.p99(), DStorm.p99());
  double StormP999Speedup = ratio(NStorm.p999(), DStorm.p999());
  R.headline("speedup_storm_p99", StormP99Speedup);
  // Deliberately NOT a speedup_* key: p999 is a single log-bucket read at
  // the extreme tail (one recompile pause either side moves it by whole
  // octaves), far too noisy for the 20% compare gate. Reported for the
  // record, gated only by this bench's own exit code via p99.
  R.headline("storm_p999_ratio", StormP999Speedup);
  R.headline("p99_storm_over_steady_normal",
             ratio(NStorm.p99(), NSteady.p99()));
  R.headline("p99_storm_over_steady_deoptless",
             ratio(DStorm.p99(), DSteady.p99()));

  printf("\n# storm-phase tail: deoptless %.2fx better p99, %.2fx better "
         "p999\n",
         StormP99Speedup, StormP999Speedup);
  printf("# p99 storm amplification over steady: normal %.2fx, deoptless "
         "%.2fx\n",
         ratio(NStorm.p99(), NSteady.p99()),
         ratio(DStorm.p99(), DSteady.p99()));

  emitBenchArtifacts(R, Argc, Argv);

  // The gate: the paper's claim is that deoptless removes the tail, so a
  // run where deoptless-off has the better storm p99 is a regression.
  if (StormP99Speedup <= 1.0) {
    fprintf(stderr,
            "FAIL: deoptless did not beat normal on storm-phase p99 "
            "(speedup %.3f <= 1.0)\n",
            StormP99Speedup);
    return 1;
  }
  printf("# PASS: deoptless beats normal on storm-phase p99\n");
  return 0;
}
