//===-- bench/fig_asynccompile.cpp - Background-compilation bench ---------------===//
//
// Part of the deoptless reproduction. MIT license.
//
// Warmup-pause elimination and steady-state parity of the background
// compilation subsystem (src/compile/). The workload is a compile-heavy
// function (a long straight-line body: translation, inference rounds and
// lowering all scale with it) called repeatedly:
//
//  * synchronous tier-up pays the whole compile inside the call that
//    crosses the threshold — the warmup pause;
//  * background tier-up requests the compile and keeps running the
//    baseline; the pause becomes one more baseline-speed call, and the
//    optimized version appears to a later call via atomic publication.
//
// Reported per mode: the latency of the threshold-crossing call (the
// paper-style "first result after warmup"), the worst warmup-phase call,
// and the steady-state per-call geomean after a drain barrier. The
// subsystem's own counters (async compiles, queue depth high-water,
// warmup pauses avoided) come from the shared stats printer.
//
//   ./fig_asynccompile [--calls 40] [--stmts 150] [--threads 2]
//
//===----------------------------------------------------------------------===//

#include "suite/harness.h"
#include "support/timer.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace rjit;
using namespace rjit::suite;

namespace {

/// A function whose compile cost dominates one baseline execution: a long
/// chain of scalar statements feeding a short fold.
std::string heavyProgram(int Stmts) {
  std::string S = "heavy <- function(a, b) {\n";
  S += "  t0 <- a + b\n";
  for (int K = 1; K < Stmts; ++K) {
    std::string Prev = "t" + std::to_string(K - 1);
    std::string Cur = "t" + std::to_string(K);
    switch (K % 3) {
    case 0:
      S += "  " + Cur + " <- " + Prev + " + a\n";
      break;
    case 1:
      S += "  " + Cur + " <- " + Prev + " * 1L\n";
      break;
    default:
      S += "  " + Cur + " <- " + Prev + " - b\n";
      break;
    }
  }
  S += "  acc <- 0L\n";
  S += "  for (i in 1:8) acc <- acc + t" + std::to_string(Stmts - 1) +
       "\n";
  S += "  acc\n}\n";
  return S;
}

struct WarmupProfile {
  std::vector<double> CallSeconds; ///< per-call latency, in call order
  double SteadySeconds = 0;        ///< per-call geomean after the barrier
  VmStats Stats;
};

WarmupProfile measure(Vm::Config Cfg, const std::string &Setup, int Calls) {
  WarmupProfile P;
  Vm V(Cfg);
  V.eval(Setup);
  for (int K = 0; K < Calls; ++K)
    P.CallSeconds.push_back(timeOnce(V, "heavy(3L, 4L)"));
  // Barrier: every requested compile has been published. Synchronous mode
  // has nothing in flight — the drain is a no-op there by construction.
  V.drainCompiles();
  std::vector<double> Steady;
  for (int K = 0; K < Calls; ++K)
    Steady.push_back(timeOnce(V, "heavy(3L, 4L)"));
  P.SteadySeconds = geomean(Steady);
  P.Stats = stats();
  return P;
}

double worstOf(const std::vector<double> &Xs) {
  double W = 0;
  for (double X : Xs)
    W = X > W ? X : W;
  return W;
}

} // namespace

int main(int Argc, char **Argv) {
  benchObsInit(Argc, Argv);
  int Calls = static_cast<int>(argLong(Argc, Argv, "--calls", 40));
  int Stmts = static_cast<int>(argLong(Argc, Argv, "--stmts", 150));
  unsigned Threads =
      static_cast<unsigned>(argLong(Argc, Argv, "--threads", 2));
  std::string Setup = heavyProgram(Stmts);

  BenchReport R;
  R.Name = "fig_asynccompile";
  R.Config = "calls=" + std::to_string(Calls) +
             " stmts=" + std::to_string(Stmts) +
             " threads=" + std::to_string(Threads);

  Vm::Config Sync = benchConfig(TierStrategy::Normal);
  // The warmup phase must at least reach the threshold-crossing call.
  if (Calls < static_cast<int>(Sync.CompileThreshold))
    Calls = static_cast<int>(Sync.CompileThreshold);
  WarmupProfile S = measure(Sync, Setup, Calls);
  printStats("sync", S.Stats);
  R.add("sync", S.CallSeconds, S.Stats);

  Vm::Config Bg = benchConfig(TierStrategy::Normal);
  Bg.BackgroundCompile = true;
  Bg.CompilerThreads = Threads;
  WarmupProfile B = measure(Bg, Setup, Calls);
  printStats("background", B.Stats);
  R.add("background", B.CallSeconds, B.Stats);

  // The threshold-crossing call: benchConfig's CompileThreshold is 3, so
  // call index 2 is the one synchronous mode compiles in.
  size_t PauseIdx = Sync.CompileThreshold - 1;
  double SyncPause = S.CallSeconds[PauseIdx];
  double BgSameCall = B.CallSeconds[PauseIdx];

  printf("# fig_asynccompile: warmup-pause elimination (%d-stmt body, "
         "%d calls, %u compiler threads)\n",
         Stmts, Calls, Threads);
  printf("mode        first_result_us   worst_warmup_us   steady_us\n");
  printf("sync        %15.2f   %15.2f   %9.3f\n", SyncPause * 1e6,
         worstOf(S.CallSeconds) * 1e6, S.SteadySeconds * 1e6);
  printf("background  %15.2f   %15.2f   %9.3f\n", BgSameCall * 1e6,
         worstOf(B.CallSeconds) * 1e6, B.SteadySeconds * 1e6);
  printf("# pause ratio (sync/background first result): %.1fx\n",
         BgSameCall > 0 ? SyncPause / BgSameCall : 0.0);
  printf("# steady-state parity (background/sync): %.2fx\n",
         S.SteadySeconds > 0 ? B.SteadySeconds / S.SteadySeconds : 0.0);

  R.headline("pause_ratio",
             BgSameCall > 0 ? SyncPause / BgSameCall : 0.0);
  R.headline("steady_parity",
             S.SteadySeconds > 0 ? B.SteadySeconds / S.SteadySeconds : 0.0);
  // The gated headline: how much faster the threshold-crossing call
  // returns its first result when compilation happens off-thread. Same
  // ratio as pause_ratio, named speedup_* so compare_bench.py gates it
  // against the checked-in baseline (which floors it far below the
  // observed ~100-200x — the gate catches "background compilation
  // stopped eliding the pause", not scheduler noise).
  R.headline("speedup_first_result",
             BgSameCall > 0 ? SyncPause / BgSameCall : 0.0);
  emitBenchArtifacts(R, Argc, Argv);

  bool PauseEliminated = BgSameCall < SyncPause;
  printf("# warmup pause strictly below synchronous compile pause: %s\n",
         PauseEliminated ? "yes" : "NO");
  return PauseEliminated ? 0 : 1;
}
