//===-- bench/fig04_sum.cpp - Fig. 4: the motivating example ---------------===//
//
// Part of the deoptless reproduction. MIT license.
//
// Reproduces Fig. 4: the naive `sum` over a vector whose element type
// changes between phases (int -> float -> complex -> float), comparing a
// normal deoptimizing VM against deoptless. The paper plots seconds per
// iteration on a log scale: normal shows a deopt spike + permanently slower
// code after each phase change; deoptless shows a one-iteration compile
// bump and then recovers, and the final float phase is as fast as the
// first because the original code was never discarded.
//
// Usage: fig04_sum [--n <elements>] [--iters <per-phase>]
//
//===----------------------------------------------------------------------===//

#include "suite/harness.h"
#include "support/stats.h"

#include <cstdio>

using namespace rjit;
using namespace rjit::suite;

namespace {

struct Phase {
  const char *Name;
  std::string Data;
};

std::vector<double> runMode(TierStrategy S, long N, int PerPhase,
                            VmStats &Out) {
  const Program *Sum = byName("sum");
  Vm V(benchConfig(S));
  V.eval(Sum->Setup);

  Phase Phases[] = {
      {"warmup-int", "data <- 1:" + std::to_string(N)},
      {"float", "data <- as.numeric(1:" + std::to_string(N) + ")"},
      {"complex", "data <- as.complex(1:" + std::to_string(N) + ")"},
      {"float2", "data <- as.numeric(1:" + std::to_string(N) + ")"},
  };

  resetStats();
  std::vector<double> Times;
  for (const Phase &P : Phases) {
    V.eval(P.Data);
    for (int K = 0; K < PerPhase; ++K)
      Times.push_back(timeOnce(V, "sum_data(data)"));
  }
  Out = stats();
  return Times;
}

} // namespace

int main(int Argc, char **Argv) {
  benchObsInit(Argc, Argv);
  long N = argLong(Argc, Argv, "--n", 200000);
  int PerPhase = static_cast<int>(argLong(Argc, Argv, "--iters", 5));

  BenchReport R;
  R.Name = "fig04_sum";
  R.Config = "n=" + std::to_string(N) +
             " iters=" + std::to_string(PerPhase);

  VmStats NormalStats, DlStats;
  std::vector<double> Normal =
      runMode(TierStrategy::Normal, N, PerPhase, NormalStats);
  R.add("normal", Normal, NormalStats);
  std::vector<double> Dl =
      runMode(TierStrategy::Deoptless, N, PerPhase, DlStats);
  R.add("deoptless", Dl, DlStats);

  printf("# Fig. 4 — sum over %ld elements; phases: int, float, complex, "
         "float (%d iterations each)\n",
         N, PerPhase);
  printf("# seconds per iteration (the paper plots this on a log scale)\n");
  printf("%-10s %-10s %12s %12s\n", "phase", "iteration", "normal",
         "deoptless");
  const char *PhaseNames[] = {"int", "float", "complex", "float2"};
  for (size_t K = 0; K < Normal.size(); ++K)
    printf("%-10s %-10zu %12.6f %12.6f\n", PhaseNames[K / PerPhase],
           K % PerPhase + 1, Normal[K], Dl[K]);

  // The headline observations of the figure.
  auto PhaseAvgTail = [&](const std::vector<double> &T, int Phase) {
    // average of the last iterations of a phase (steady state)
    double S = 0;
    int From = Phase * PerPhase + PerPhase / 2, Cnt = 0;
    for (int K = From; K < (Phase + 1) * PerPhase; ++K, ++Cnt)
      S += T[K];
    return S / Cnt;
  };
  printf("\n# steady-state seconds per phase\n");
  printf("%-10s %12s %12s %8s\n", "phase", "normal", "deoptless", "speedup");
  for (int P = 0; P < 4; ++P) {
    double Tn = PhaseAvgTail(Normal, P), Td = PhaseAvgTail(Dl, P);
    printf("%-10s %12.6f %12.6f %7.2fx\n", PhaseNames[P], Tn, Td, Tn / Td);
    R.headline(std::string("speedup_") + PhaseNames[P], Tn / Td);
  }
  printf("\n# events: normal deopts=%llu recompiles=%llu | deoptless "
         "deopts=%llu continuations=%llu dispatch-hits=%llu\n",
         static_cast<unsigned long long>(NormalStats.Deopts),
         static_cast<unsigned long long>(NormalStats.Compilations),
         static_cast<unsigned long long>(DlStats.Deopts),
         static_cast<unsigned long long>(DlStats.DeoptlessCompiles),
         static_cast<unsigned long long>(DlStats.DeoptlessHits));
  emitBenchArtifacts(R, Argc, Argv);
  return 0;
}
