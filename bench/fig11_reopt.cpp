//===-- bench/fig11_reopt.cpp - Fig. 11: vs profile-driven reopt -----------===//
//
// Part of the deoptless reproduction. MIT license.
//
// Reproduces Fig. 11: the three benchmarks of the profile-driven
// reoptimization paper (DLS'20), run against deoptless. The expectation
// (paper §5.2): deoptless only improves `rsa`, where the phase change is
// accompanied by a deoptimization; `microbenchmark` (stale feedback, no
// deopt) and `shared` (merged feedback from two callers, no deopt) are
// unchanged. The ProfileDrivenReopt strategy is also run as the
// comparator.
//
// Usage: fig11_reopt [--iters N] [--execs M]
//
//===----------------------------------------------------------------------===//

#include "suite/harness.h"

#include <cstdio>

using namespace rjit;
using namespace rjit::suite;

namespace {

struct Bench {
  const char *Name;
  /// Phase scripts: [0] warm phase pre-eval, [1] changed phase pre-eval.
  std::string WarmPre, ChangedPre;
  std::string Driver;
};

std::vector<Bench> benches() {
  return {
      // Stale type feedback: the branchy profile stabilizes, no deopt.
      {"microbenchmark", "micro_flag <- TRUE", "micro_flag <- TRUE",
       "micro_f(micro_data, micro_flag)"},
      // The key parameter changes its type (int -> double): deopt.
      {"rsa", "key <- 65L", "key <- 65", "rsa_run(key, 300L)"},
      // A helper shared by differently-typed callers: merged feedback.
      {"shared", "", "", "shared_caller_int(1500L) + "
                         "shared_caller_real(1500L)"},
  };
}

std::vector<double> runMode(const Bench &B, TierStrategy S, int Iters,
                            VmStats &Out) {
  const Program *P = byName(B.Name);
  Vm V(benchConfig(S));
  V.eval(P->Setup);
  if (B.Name == std::string("microbenchmark"))
    V.eval("micro_data <- as.numeric(1:3000)");
  if (!B.WarmPre.empty())
    V.eval(B.WarmPre);
  resetStats();
  std::vector<double> Times;
  for (int K = 0; K < Iters; ++K) {
    if (K == Iters / 3 && !B.ChangedPre.empty())
      V.eval(B.ChangedPre);
    Times.push_back(timeOnce(V, B.Driver));
  }
  Out = stats();
  return Times;
}

} // namespace

int main(int Argc, char **Argv) {
  benchObsInit(Argc, Argv);
  int Iters = static_cast<int>(argLong(Argc, Argv, "--iters", 15));
  int Execs = static_cast<int>(argLong(Argc, Argv, "--execs", 2));

  BenchReport R;
  R.Name = "fig11_reopt";
  R.Config =
      "iters=" + std::to_string(Iters) + " execs=" + std::to_string(Execs);

  printf("# Fig. 11 — reoptimization benchmarks (DLS'20 comparison)\n");
  printf("# speedup of deoptless over normal per iteration (the paper "
         "expects rsa to improve, the others to stay at 1x)\n");
  printf("%-16s %10s %10s | per-iteration deoptless speedups\n",
         "benchmark", "deoptless", "reopt");
  for (const Bench &B : benches()) {
    std::vector<double> AccDl(Iters, 0.0);
    double SpDl = 0, SpRe = 0;
    for (int E = 0; E < Execs; ++E) {
      VmStats Sn, Sd, Sr;
      std::vector<double> Tn = runMode(B, TierStrategy::Normal, Iters, Sn);
      if (E == 0)
        R.add(std::string(B.Name) + "/normal", Tn, Sn);
      std::vector<double> Td =
          runMode(B, TierStrategy::Deoptless, Iters, Sd);
      if (E == 0)
        R.add(std::string(B.Name) + "/deoptless", Td, Sd);
      std::vector<double> Tr =
          runMode(B, TierStrategy::ProfileDrivenReopt, Iters, Sr);
      if (E == 0)
        R.add(std::string(B.Name) + "/reopt", Tr, Sr);
      std::vector<double> RatioD(Iters), RatioR(Iters);
      for (int K = 0; K < Iters; ++K) {
        RatioD[K] = Tn[K] / Td[K];
        RatioR[K] = Tn[K] / Tr[K];
        AccDl[K] += RatioD[K] / Execs;
      }
      SpDl += geomean(RatioD) / Execs;
      SpRe += geomean(RatioR) / Execs;
    }
    printf("%-16s %9.2fx %9.2fx |", B.Name, SpDl, SpRe);
    for (int K = 0; K < Iters; ++K)
      printf(" %.2f", AccDl[K]);
    printf("\n");
    R.headline(std::string("speedup_dl_") + B.Name, SpDl);
    R.headline(std::string("speedup_reopt_") + B.Name, SpRe);
  }
  printf("\n# (paper: deoptless matches profile-driven reopt's best case "
         "on rsa (~1.4x) and does not help the other two)\n");
  emitBenchArtifacts(R, Argc, Argv);
  return 0;
}
