//===-- bench/micro_gbench.cpp - Micro ablations (google-benchmark) --------===//
//
// Part of the deoptless reproduction. MIT license.
//
// Ablation microbenchmarks backing the design discussions of the paper:
//  * the tier gap (baseline interpreter vs optimized code) that makes
//    tiering down painful in the first place;
//  * speculative typed code vs generic optimized code (what a function
//    degrades to after an over-generalizing recompile);
//  * the cost of a true deoptimization vs a deoptless dispatch hit;
//  * OSR-in compilation + entry cost;
//  * guard overhead with speculation disabled (§4.1: explicit exits cost
//    code size, not peak performance).
//
//===----------------------------------------------------------------------===//

#include "suite/harness.h"
#include "support/stats.h"

#include <benchmark/benchmark.h>

using namespace rjit;
using namespace rjit::suite;

namespace {

constexpr long SumN = 50000;

const char *SumSetup = R"(
sum_data <- function(data) {
  total <- 0
  for (i in 1:length(data)) total <- total + data[[i]])";
// (closed below; split so the driver size is visible here)
const char *SumSetupTail = R"(
  total
}
)";

std::string sumSetup() { return std::string(SumSetup) + SumSetupTail; }

std::unique_ptr<Vm> makeVm(TierStrategy S, bool Speculate = true,
                           uint64_t InvalidationRate = 0) {
  Vm::Config C = benchConfig(S);
  C.Speculate = Speculate;
  C.InvalidationRate = InvalidationRate;
  auto V = std::make_unique<Vm>(C);
  V->eval(sumSetup());
  V->eval("data <- as.numeric(1:" + std::to_string(SumN) + ")");
  return V;
}

void warm(Vm &V, int N = 6) {
  for (int K = 0; K < N; ++K)
    V.eval("sum_data(data)");
}

void BM_BaselineInterpreter(benchmark::State &State) {
  Vm::Config C = benchConfig(TierStrategy::BaselineOnly);
  C.OsrIn = false;
  Vm V(C);
  V.eval(sumSetup());
  V.eval("data <- as.numeric(1:" + std::to_string(SumN) + ")");
  for (auto _ : State)
    benchmark::DoNotOptimize(V.eval("sum_data(data)"));
  State.SetItemsProcessed(State.iterations() * SumN);
}
BENCHMARK(BM_BaselineInterpreter);

void BM_OptimizedSpeculative(benchmark::State &State) {
  auto V = makeVm(TierStrategy::Normal);
  warm(*V);
  for (auto _ : State)
    benchmark::DoNotOptimize(V->eval("sum_data(data)"));
  State.SetItemsProcessed(State.iterations() * SumN);
}
BENCHMARK(BM_OptimizedSpeculative);

void BM_OptimizedGeneric(benchmark::State &State) {
  // Speculation disabled: the shape a function converges to after
  // over-generalizing recompiles.
  auto V = makeVm(TierStrategy::Normal, /*Speculate=*/false);
  warm(*V);
  for (auto _ : State)
    benchmark::DoNotOptimize(V->eval("sum_data(data)"));
  State.SetItemsProcessed(State.iterations() * SumN);
}
BENCHMARK(BM_OptimizedGeneric);

void BM_TrueDeoptimization(benchmark::State &State) {
  // Every iteration warms the function, then flips the data type to force
  // one deoptimization; measures the full OSR-out + interpreter-remainder
  // cost (amortized over one sum).
  auto V = makeVm(TierStrategy::Normal);
  warm(*V);
  V->eval("ints <- 1:1000");
  V->eval("reals <- as.numeric(1:1000)");
  for (auto _ : State) {
    State.PauseTiming();
    // Re-train on ints so the next real triggers a deopt.
    for (int K = 0; K < 6; ++K)
      V->eval("sum_data(ints)");
    resetStats();
    State.ResumeTiming();
    benchmark::DoNotOptimize(V->eval("sum_data(reals)"));
  }
}
BENCHMARK(BM_TrueDeoptimization)->Iterations(50);

void BM_DeoptlessDispatchHit(benchmark::State &State) {
  // Same phase flip, but after the continuation exists: measures the
  // dispatch overhead of deoptless (context computation + table scan +
  // continuation call).
  auto V = makeVm(TierStrategy::Deoptless);
  V->eval("ints <- 1:1000");
  V->eval("reals <- as.numeric(1:1000)");
  for (int K = 0; K < 8; ++K)
    V->eval("sum_data(ints)");
  V->eval("sum_data(reals)"); // compile the continuation
  for (auto _ : State)
    benchmark::DoNotOptimize(V->eval("sum_data(reals)"));
}
BENCHMARK(BM_DeoptlessDispatchHit);

void BM_OsrInCompileAndEnter(benchmark::State &State) {
  // A single long-running call: the loop tiers up mid-activation.
  for (auto _ : State) {
    State.PauseTiming();
    Vm::Config C = benchConfig(TierStrategy::Normal);
    C.OsrThreshold = 200;
    Vm V(C);
    V.eval(sumSetup());
    V.eval("data <- as.numeric(1:" + std::to_string(SumN) + ")");
    State.ResumeTiming();
    benchmark::DoNotOptimize(V.eval("sum_data(data)"));
  }
  State.SetItemsProcessed(State.iterations() * SumN);
}
BENCHMARK(BM_OsrInCompileAndEnter)->Iterations(50);

void BM_ContinuationCompile(benchmark::State &State) {
  // Cost of compiling a deoptless continuation (the one-iteration bump in
  // Fig. 4): fresh VM per measurement, first real-typed call after an
  // int-trained optimized version.
  for (auto _ : State) {
    State.PauseTiming();
    Vm::Config C = benchConfig(TierStrategy::Deoptless);
    C.OsrIn = false;
    Vm V(C);
    V.eval(sumSetup());
    V.eval("ints <- 1:200");
    V.eval("reals <- as.numeric(1:200)");
    for (int K = 0; K < 6; ++K)
      V.eval("sum_data(ints)");
    State.ResumeTiming();
    benchmark::DoNotOptimize(V.eval("sum_data(reals)"));
  }
}
BENCHMARK(BM_ContinuationCompile)->Iterations(50);

void BM_GuardChecksOnly(benchmark::State &State) {
  // Peak-performance effect of the explicit guards (paper §4.1 reports no
  // measurable effect; the cost shows up as code size, which we report as
  // a counter).
  auto V = makeVm(TierStrategy::Normal);
  warm(*V);
  uint64_t Before = stats().AssumeChecks;
  for (auto _ : State)
    benchmark::DoNotOptimize(V->eval("sum_data(data)"));
  State.counters["guard_checks_per_iter"] = benchmark::Counter(
      static_cast<double>(stats().AssumeChecks - Before) /
      State.iterations());
}
BENCHMARK(BM_GuardChecksOnly);

void BM_CleanupAblation(benchmark::State &State) {
  // The §4.3 feedback cleanup pass, ablated: without it, continuations
  // compile against stale profiles, mis-speculate, and deopt for good —
  // the float-phase call becomes a true deoptimization every time.
  bool Cleanup = State.range(0) != 0;
  for (auto _ : State) {
    State.PauseTiming();
    Vm::Config C = benchConfig(TierStrategy::Deoptless);
    C.OsrIn = false;
    C.FeedbackCleanup = Cleanup;
    Vm V(C);
    V.eval(sumSetup());
    V.eval("ints <- 1:2000");
    V.eval("reals <- as.numeric(1:2000)");
    for (int K = 0; K < 6; ++K)
      V.eval("sum_data(ints)");
    V.eval("sum_data(reals)"); // first continuation
    resetStats();
    State.ResumeTiming();
    // Steady-state float calls: with cleanup these are dispatch hits;
    // without it they degrade.
    for (int K = 0; K < 10; ++K)
      benchmark::DoNotOptimize(V.eval("sum_data(reals)"));
    State.PauseTiming();
    State.counters["true_deopts"] = benchmark::Counter(
        static_cast<double>(stats().Deopts), benchmark::Counter::kAvgIterations);
    State.ResumeTiming();
  }
}
BENCHMARK(BM_CleanupAblation)->Arg(1)->Arg(0)->Iterations(30);

} // namespace

BENCHMARK_MAIN();
