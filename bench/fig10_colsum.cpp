//===-- bench/fig10_colsum.cpp - Fig. 10: column-wise sum ------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
// Reproduces Fig. 10 (paper Listing 8): summing the columns of a table
// whose columns alternate between double and integer vectors. In the
// normal VM the first integer column after warming up on doubles triggers
// a deoptimization; the function is recompiled generically and stays slow
// for all remaining columns. With deoptless the integer case gets its own
// specialized continuation and both column types run at full speed.
//
// Usage: fig10_colsum [--rows N] [--cols C] [--execs M]
//
//===----------------------------------------------------------------------===//

#include "suite/harness.h"
#include "support/stats.h"

#include <cstdio>

using namespace rjit;
using namespace rjit::suite;

namespace {

std::vector<double> runMode(TierStrategy S, long Rows, long Cols, int Execs,
                            VmStats &Out) {
  const Program *P = byName("colsum");
  std::vector<double> Times(Cols, 0.0);
  for (int E = 0; E < Execs; ++E) {
    Vm V(benchConfig(S));
    V.eval(P->Setup);
    V.eval("t <- make_table(" + std::to_string(Cols) + "L, " +
           std::to_string(Rows) + "L)");
    resetStats();
    // Iterations = individual column sums, exactly the paper's "run times
    // of f": columns alternate double (odd) and integer (even).
    for (long C = 1; C <= Cols; ++C)
      Times[C - 1] +=
          timeOnce(V, "col_f(" + std::to_string(C) + "L, t)") / Execs;
    Out = stats();
  }
  return Times;
}

} // namespace

int main(int Argc, char **Argv) {
  benchObsInit(Argc, Argv);
  long Rows = argLong(Argc, Argv, "--rows", 100000);
  long Cols = argLong(Argc, Argv, "--cols", 50);
  int Execs = static_cast<int>(argLong(Argc, Argv, "--execs", 2));

  BenchReport R;
  R.Name = "fig10_colsum";
  R.Config = "rows=" + std::to_string(Rows) + " cols=" +
             std::to_string(Cols) + " execs=" + std::to_string(Execs);

  VmStats NStats, DStats;
  std::vector<double> Normal =
      runMode(TierStrategy::Normal, Rows, Cols, Execs, NStats);
  R.add("normal", Normal, NStats);
  std::vector<double> Dl =
      runMode(TierStrategy::Deoptless, Rows, Cols, Execs, DStats);
  R.add("deoptless", Dl, DStats);

  printf("# Fig. 10 — column-wise sum, %ld columns x %ld rows, alternating "
         "double/integer columns\n",
         Cols, Rows);
  printf("# seconds per column sum (paper plots log scale)\n");
  printf("%-6s %-8s %12s %12s\n", "col", "type", "normal", "deoptless");
  for (long C = 0; C < Cols; ++C)
    printf("%-6ld %-8s %12.6f %12.6f\n", C + 1,
           (C + 1 >= 5 && (C + 1) % 2 == 1) ? "double" : "int", Normal[C], Dl[C]);

  // Stable iterations: the last half of the columns.
  double Tn = 0, Td = 0;
  long From = Cols / 2, Cnt = 0;
  for (long C = From; C < Cols; ++C, ++Cnt) {
    Tn += Normal[C];
    Td += Dl[C];
  }
  printf("\n# stable-iteration speedup (last %ld columns): %.2fx "
         "(paper: 35x on their testbed; amplitude is compressed here, see "
         "EXPERIMENTS.md)\n",
         Cnt, Tn / Td);
  printf("# events: normal deopts=%llu recompiles=%llu | deoptless "
         "deopts=%llu continuations=%llu hits=%llu\n",
         static_cast<unsigned long long>(NStats.Deopts),
         static_cast<unsigned long long>(NStats.Compilations),
         static_cast<unsigned long long>(DStats.Deopts),
         static_cast<unsigned long long>(DStats.DeoptlessCompiles),
         static_cast<unsigned long long>(DStats.DeoptlessHits));
  R.headline("speedup_stable", Tn / Td);
  emitBenchArtifacts(R, Argc, Argv);
  return 0;
}
