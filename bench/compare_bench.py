#!/usr/bin/env python3
"""Compare BENCH_<name>.json reports against checked-in baselines.

The fig benches emit machine-readable reports (see bench/suite/harness.h):
absolute times vary with the host, but the `headlines` block carries
machine-independent ratios (speedups of one mode over another measured in
the same process). This script diffs the `speedup_*` headlines of freshly
produced reports against the baselines in bench/baselines/ and fails when
a speedup regressed by more than --tolerance (default 20%).

Usage:
  python3 bench/compare_bench.py [--baseline-dir bench/baselines]
                                 [--current-dir .] [--tolerance 0.20]

Exit status: 0 when every compared headline is within tolerance; 1 (with a
clear message, never a traceback) on any regression, unreadable file,
missing report, baseline or report without a speedup_* headline, or a
current report with no baseline. The strictness is the point: a new bench
whose JSON never gets a baseline, or a baseline that silently stops
matching anything, must fail the CI gate instead of vacuously passing it.
"""

import argparse
import glob
import json
import os
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def speedup_headlines(doc):
    # Only the higher-is-better speedup ratios are stable across hosts;
    # pause ratios and overhead probes are gated by the benches' own exit
    # codes.
    headlines = doc.get("headlines")
    if not isinstance(headlines, dict):
        return {}
    return {k: v for k, v in headlines.items() if k.startswith("speedup_")}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--current-dir", default=".")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed relative drop of a speedup headline (0.20 = 20%%)",
    )
    args = ap.parse_args()

    baselines = sorted(
        glob.glob(os.path.join(args.baseline_dir, "BENCH_*.json"))
    )
    if not baselines:
        print(f"error: no baselines under {args.baseline_dir}", file=sys.stderr)
        return 1

    failures = 0
    compared = 0
    baseline_names = set()
    for bpath in baselines:
        name = os.path.basename(bpath)
        baseline_names.add(name)
        cpath = os.path.join(args.current_dir, name)
        if not os.path.exists(cpath):
            print(
                f"error: {name}: baseline exists but no current report was "
                f"produced under {args.current_dir} — did the bench fail to "
                f"run or emit its --json?",
                file=sys.stderr,
            )
            failures += 1
            continue
        try:
            base, cur = load(bpath), load(cpath)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: {name}: unreadable report: {e}", file=sys.stderr)
            failures += 1
            continue

        base_speedups = speedup_headlines(base)
        if not base_speedups:
            print(
                f"error: {name}: baseline has no speedup_* headline — a "
                f"baseline that gates nothing is a broken gate; fix or "
                f"remove it",
                file=sys.stderr,
            )
            failures += 1
            continue

        for key, bval in sorted(base_speedups.items()):
            cval = speedup_headlines(cur).get(key)
            if cval is None:
                print(
                    f"error: {name}: headline {key} is in the baseline but "
                    f"missing from the current report — the bench stopped "
                    f"emitting it",
                    file=sys.stderr,
                )
                failures += 1
                continue
            compared += 1
            floor = bval * (1.0 - args.tolerance)
            verdict = "ok" if cval >= floor else "REGRESSED"
            print(
                f"{name[6:-5]:24s} {key:32s} "
                f"base {bval:8.3f}  cur {cval:8.3f}  floor {floor:8.3f}  "
                f"{verdict}"
            )
            if cval < floor:
                failures += 1

    # A current report with no baseline is a new bench whose speedups are
    # not gated at all: fail loudly so the baseline gets checked in with
    # the bench instead of the gate silently passing forever.
    for cpath in sorted(glob.glob(os.path.join(args.current_dir, "BENCH_*.json"))):
        name = os.path.basename(cpath)
        if name not in baseline_names:
            print(
                f"error: {name}: current report has no baseline under "
                f"{args.baseline_dir} — check one in (with conservative "
                f"speedup_* values) so the new bench is gated",
                file=sys.stderr,
            )
            failures += 1

    if compared == 0:
        print("error: no headlines compared", file=sys.stderr)
        return 1
    print(f"# compared {compared} headlines, {failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
