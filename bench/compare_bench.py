#!/usr/bin/env python3
"""Compare BENCH_<name>.json reports against checked-in baselines.

The fig benches emit machine-readable reports (see bench/suite/harness.h):
absolute times vary with the host, but the `headlines` block carries
machine-independent ratios (speedups of one mode over another measured in
the same process). This script diffs the `speedup_*` headlines of freshly
produced reports against the baselines in bench/baselines/ and fails when
a speedup regressed by more than --tolerance (default 20%).

Usage:
  python3 bench/compare_bench.py [--baseline-dir bench/baselines]
                                 [--current-dir .] [--tolerance 0.20]

Exit status: 0 when every compared headline is within tolerance (missing
baselines or reports only warn), 1 on any regression or unreadable file.
"""

import argparse
import glob
import json
import os
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--current-dir", default=".")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed relative drop of a speedup headline (0.20 = 20%%)",
    )
    args = ap.parse_args()

    baselines = sorted(
        glob.glob(os.path.join(args.baseline_dir, "BENCH_*.json"))
    )
    if not baselines:
        print(f"error: no baselines under {args.baseline_dir}", file=sys.stderr)
        return 1

    failures = 0
    compared = 0
    for bpath in baselines:
        name = os.path.basename(bpath)
        cpath = os.path.join(args.current_dir, name)
        if not os.path.exists(cpath):
            print(f"warn: {name}: no current report, skipping")
            continue
        try:
            base, cur = load(bpath), load(cpath)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: {name}: {e}", file=sys.stderr)
            failures += 1
            continue

        for key, bval in sorted(base.get("headlines", {}).items()):
            # Only the higher-is-better speedup ratios are stable across
            # hosts; pause ratios and overhead probes are gated by the
            # benches' own exit codes.
            if not key.startswith("speedup_"):
                continue
            cval = cur.get("headlines", {}).get(key)
            if cval is None:
                print(f"warn: {name}: headline {key} missing in current")
                continue
            compared += 1
            floor = bval * (1.0 - args.tolerance)
            verdict = "ok" if cval >= floor else "REGRESSED"
            print(
                f"{name[6:-5]:24s} {key:32s} "
                f"base {bval:8.3f}  cur {cval:8.3f}  floor {floor:8.3f}  "
                f"{verdict}"
            )
            if cval < floor:
                failures += 1

    if compared == 0:
        print("error: no headlines compared", file=sys.stderr)
        return 1
    print(f"# compared {compared} headlines, {failures} regression(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
