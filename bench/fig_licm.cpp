//===-- bench/fig_licm.cpp - Loop optimization layer ablation --------------===//
//
// Part of the deoptless reproduction. MIT license.
//
// Measures the loop optimization layer on a colsum-style kernel written
// the natural way: the element accessor is a function parameter (so every
// inner iteration pays a callee-identity guard once the call is inlined)
// and the column base index is recomputed per element. Contextual
// dispatch and inlining already devirtualized and unboxed the loop — the
// remaining per-iteration overhead is exactly what speculation has
// already proven stable: the identity guard on the invariant accessor and
// the (j-1)*nr base-index arithmetic. LICM hoists the arithmetic (and the
// inner `1:nr` sequence allocation out of the outer loop); guard hoisting
// moves the identity check into the preheader, re-anchored to the
// pre-loop frame state.
//
// The exit code asserts the acceptance bound: >= --bound (default 1.3x)
// steady-state speedup from LoopOpts with HoistedGuards > 0.
//
// Usage: fig_licm [--rows N] [--cols C] [--iters K] [--bound B(x100)]
//
//===----------------------------------------------------------------------===//

#include "suite/harness.h"
#include "support/stats.h"
#include "support/timer.h"

#include <algorithm>
#include <cstdio>

using namespace rjit;
using namespace rjit::suite;

namespace {

const char *Setup = R"(
get <- function(v, k) v[[k]]
colsum <- function(m, nr, nc, f) {
  s <- 0
  for (j in 1:nc)
    for (i in 1:nr)
      s <- s + f(m, (j - 1L) * nr + i)
  s
}
)";

std::vector<double> runMode(TierStrategy S, bool LoopOpts, bool Trace,
                            long Rows, long Cols, int Iters, VmStats &Out) {
  Vm::Config Cfg = benchConfig(S);
  Cfg.Inlining = true;
  Cfg.LoopOpts.Enabled = LoopOpts;
  Cfg.Trace.Enabled = Trace;
  Vm V(Cfg);
  V.eval(Setup);
  V.eval("d <- as.numeric(1:" + std::to_string(Rows * Cols) + ")");
  std::string Call = "r <- colsum(d, " + std::to_string(Rows) + "L, " +
                     std::to_string(Cols) + "L, get)";

  std::vector<double> Times;
  Times.reserve(Iters);
  for (int K = 0; K < Iters; ++K)
    Times.push_back(timeOnce(V, Call));
  Out = stats();
  return Times;
}

double steady(const std::vector<double> &Xs) {
  std::vector<double> Tail(Xs.begin() + Xs.size() / 3, Xs.end());
  return geomean(Tail);
}

/// Fastest steady-state iteration: the noise-robust floor used for the
/// tracing-overhead ratio (the mean is dominated by scheduler noise at
/// millisecond iteration times; a constant per-event cost shows up in the
/// minimum just the same).
double steadyMin(const std::vector<double> &Xs) {
  double M = Xs.back();
  for (size_t K = Xs.size() / 3; K < Xs.size(); ++K)
    M = Xs[K] < M ? Xs[K] : M;
  return M;
}

} // namespace

int main(int Argc, char **Argv) {
  benchObsInit(Argc, Argv);
  long Rows = argLong(Argc, Argv, "--rows", 1000);
  long Cols = argLong(Argc, Argv, "--cols", 40);
  int Iters = static_cast<int>(argLong(Argc, Argv, "--iters", 30));
  double Bound = argLong(Argc, Argv, "--bound", 130) / 100.0;
  double TraceBound = argLong(Argc, Argv, "--trace-bound", 102) / 100.0;

  BenchReport R;
  R.Name = "fig_licm";
  R.Config = "rows=" + std::to_string(Rows) + " cols=" +
             std::to_string(Cols) + " iters=" + std::to_string(Iters);

  struct Mode {
    const char *Label;
    TierStrategy S;
    bool LoopOpts;
    bool Trace;
    VmStats Stats;
    std::vector<double> Times;
  } Modes[] = {
      {"normal", TierStrategy::Normal, false, false, {}, {}},
      {"normal+loopopts", TierStrategy::Normal, true, false, {}, {}},
      {"deoptless", TierStrategy::Deoptless, false, false, {}, {}},
      {"deoptless+loopopts", TierStrategy::Deoptless, true, false, {}, {}},
      // The acceptance criterion's overhead probe: the same configuration
      // as normal+loopopts with the event tracer enabled, so the report
      // can compare steady states with and without tracing.
      {"normal+loopopts+trace", TierStrategy::Normal, true, true, {}, {}},
  };
  for (Mode &M : Modes) {
    M.Times = runMode(M.S, M.LoopOpts, M.Trace, Rows, Cols, Iters, M.Stats);
    R.add(M.Label, M.Times, M.Stats);
  }

  printf("# loop optimization layer on a colsum-style invariant-guard "
         "kernel (%ldx%ld, %d iterations, inlining on)\n",
         Rows, Cols, Iters);
  printf("%-6s %14s %14s %14s %14s\n", "iter", "normal[s]", "norm+loop[s]",
         "deoptless[s]", "deopl+loop[s]");
  for (int K = 0; K < Iters; ++K)
    printf("%-6d %14.6f %14.6f %14.6f %14.6f\n", K + 1, Modes[0].Times[K],
           Modes[1].Times[K], Modes[2].Times[K], Modes[3].Times[K]);

  double SpeedN = steady(Modes[0].Times) / steady(Modes[1].Times);
  double SpeedD = steady(Modes[2].Times) / steady(Modes[3].Times);
  printf("\n# steady-state geomean speedup from the loop layer: "
         "normal %.2fx, deoptless %.2fx\n",
         SpeedN, SpeedD);
  printf("# loop-layer events (normal+loopopts): hoisted guards=%llu "
         "hoisted instrs=%llu eliminated guards=%llu\n",
         static_cast<unsigned long long>(Modes[1].Stats.HoistedGuards),
         static_cast<unsigned long long>(Modes[1].Stats.HoistedInstrs),
         static_cast<unsigned long long>(Modes[1].Stats.EliminatedGuards));

  // Extra traced/untraced pairs in reverse order (ABBA), folded into the
  // per-configuration minimum. A constant per-event tracing cost survives
  // every attempt; a machine-noise spike does not survive a min, so retry
  // while the ratio is above the bound (up to 3 pairs).
  double TracedMin = steadyMin(Modes[4].Times);
  double UntracedMin = steadyMin(Modes[1].Times);
  double TraceRatio = TracedMin / UntracedMin;
  for (int Attempt = 0; Attempt < 3 && TraceRatio > TraceBound; ++Attempt) {
    VmStats Scratch;
    TracedMin = std::min(
        TracedMin, steadyMin(runMode(TierStrategy::Normal, true, true, Rows,
                                     Cols, Iters, Scratch)));
    UntracedMin = std::min(
        UntracedMin, steadyMin(runMode(TierStrategy::Normal, true, false,
                                       Rows, Cols, Iters, Scratch)));
    TraceRatio = TracedMin / UntracedMin;
  }
  printf("# tracing overhead: traced/untraced fastest-steady-iteration "
         "ratio %.4f (bound %.2f)\n",
         TraceRatio, TraceBound);

  R.headline("speedup_loop_normal", SpeedN);
  R.headline("speedup_loop_deoptless", SpeedD);
  R.headline("trace_overhead_ratio", TraceRatio);
  emitBenchArtifacts(R, Argc, Argv);

  bool Ok = SpeedN >= Bound && Modes[1].Stats.HoistedGuards > 0 &&
            Modes[1].Stats.HoistedInstrs > 0;
  if (!Ok)
    printf("# FAIL: expected >= %.2fx steady-state speedup with hoisted "
           "guards and instructions\n",
           Bound);
  if (TraceRatio > TraceBound) {
    printf("# FAIL: tracing overhead ratio %.4f exceeds bound %.2f\n",
           TraceRatio, TraceBound);
    Ok = false;
  }
  return Ok ? 0 : 1;
}
