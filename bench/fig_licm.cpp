//===-- bench/fig_licm.cpp - Loop optimization layer ablation --------------===//
//
// Part of the deoptless reproduction. MIT license.
//
// Measures the loop optimization layer on a colsum-style kernel written
// the natural way: the element accessor is a function parameter (so every
// inner iteration pays a callee-identity guard once the call is inlined)
// and the column base index is recomputed per element. Contextual
// dispatch and inlining already devirtualized and unboxed the loop — the
// remaining per-iteration overhead is exactly what speculation has
// already proven stable: the identity guard on the invariant accessor and
// the (j-1)*nr base-index arithmetic. LICM hoists the arithmetic (and the
// inner `1:nr` sequence allocation out of the outer loop); guard hoisting
// moves the identity check into the preheader, re-anchored to the
// pre-loop frame state.
//
// The exit code asserts the acceptance bound: >= --bound (default 1.3x)
// steady-state speedup from LoopOpts with HoistedGuards > 0.
//
// Usage: fig_licm [--rows N] [--cols C] [--iters K] [--bound B(x100)]
//
//===----------------------------------------------------------------------===//

#include "suite/harness.h"
#include "support/stats.h"
#include "support/timer.h"

#include <cstdio>

using namespace rjit;
using namespace rjit::suite;

namespace {

const char *Setup = R"(
get <- function(v, k) v[[k]]
colsum <- function(m, nr, nc, f) {
  s <- 0
  for (j in 1:nc)
    for (i in 1:nr)
      s <- s + f(m, (j - 1L) * nr + i)
  s
}
)";

std::vector<double> runMode(TierStrategy S, bool LoopOpts, long Rows,
                            long Cols, int Iters, VmStats &Out) {
  Vm::Config Cfg = benchConfig(S);
  Cfg.Inlining = true;
  Cfg.LoopOpts.Enabled = LoopOpts;
  Vm V(Cfg);
  V.eval(Setup);
  V.eval("d <- as.numeric(1:" + std::to_string(Rows * Cols) + ")");
  std::string Call = "r <- colsum(d, " + std::to_string(Rows) + "L, " +
                     std::to_string(Cols) + "L, get)";

  std::vector<double> Times;
  Times.reserve(Iters);
  for (int K = 0; K < Iters; ++K) {
    Timer T;
    V.eval(Call);
    Times.push_back(T.elapsedSeconds());
  }
  Out = stats();
  return Times;
}

double steady(const std::vector<double> &Xs) {
  std::vector<double> Tail(Xs.begin() + Xs.size() / 3, Xs.end());
  return geomean(Tail);
}

} // namespace

int main(int Argc, char **Argv) {
  long Rows = argLong(Argc, Argv, "--rows", 1000);
  long Cols = argLong(Argc, Argv, "--cols", 40);
  int Iters = static_cast<int>(argLong(Argc, Argv, "--iters", 30));
  double Bound = argLong(Argc, Argv, "--bound", 130) / 100.0;

  struct Mode {
    const char *Label;
    TierStrategy S;
    bool LoopOpts;
    VmStats Stats;
    std::vector<double> Times;
  } Modes[] = {
      {"normal", TierStrategy::Normal, false, {}, {}},
      {"normal+loopopts", TierStrategy::Normal, true, {}, {}},
      {"deoptless", TierStrategy::Deoptless, false, {}, {}},
      {"deoptless+loopopts", TierStrategy::Deoptless, true, {}, {}},
  };
  for (Mode &M : Modes)
    M.Times = runMode(M.S, M.LoopOpts, Rows, Cols, Iters, M.Stats);

  printf("# loop optimization layer on a colsum-style invariant-guard "
         "kernel (%ldx%ld, %d iterations, inlining on)\n",
         Rows, Cols, Iters);
  printf("%-6s %14s %14s %14s %14s\n", "iter", "normal[s]", "norm+loop[s]",
         "deoptless[s]", "deopl+loop[s]");
  for (int K = 0; K < Iters; ++K)
    printf("%-6d %14.6f %14.6f %14.6f %14.6f\n", K + 1, Modes[0].Times[K],
           Modes[1].Times[K], Modes[2].Times[K], Modes[3].Times[K]);

  double SpeedN = steady(Modes[0].Times) / steady(Modes[1].Times);
  double SpeedD = steady(Modes[2].Times) / steady(Modes[3].Times);
  printf("\n# steady-state geomean speedup from the loop layer: "
         "normal %.2fx, deoptless %.2fx\n",
         SpeedN, SpeedD);
  printf("# loop-layer events (normal+loopopts): hoisted guards=%llu "
         "hoisted instrs=%llu eliminated guards=%llu\n",
         static_cast<unsigned long long>(Modes[1].Stats.HoistedGuards),
         static_cast<unsigned long long>(Modes[1].Stats.HoistedInstrs),
         static_cast<unsigned long long>(Modes[1].Stats.EliminatedGuards));

  bool Ok = SpeedN >= Bound && Modes[1].Stats.HoistedGuards > 0 &&
            Modes[1].Stats.HoistedInstrs > 0;
  if (!Ok)
    printf("# FAIL: expected >= %.2fx steady-state speedup with hoisted "
           "guards and instructions\n",
           Bound);
  return Ok ? 0 : 1;
}
