//===-- bench/fig08_volcano.cpp - Fig. 8: the volcano app session ----------===//
//
// Part of the deoptless reproduction. MIT license.
//
// Reproduces Fig. 8: an interactive session with the volcano rendering
// app. The paper records a user clicking through the shiny GUI — changing
// the sun's position and the numerical interpolation function — and
// measures each interaction's ray-tracing (cast_rays) and rendering
// (ggplot) step. We script the same session shape (see DESIGN.md for the
// substitution): a fixed sequence of interactions where the interpolation
// function changes at fixed points, which is exactly what triggers the
// deoptimizations in the paper.
//
// Usage: fig08_volcano [--n <heightmap-size>] [--interactions K]
//
//===----------------------------------------------------------------------===//

#include "suite/harness.h"
#include "support/stats.h"

#include <cstdio>

using namespace rjit;
using namespace rjit::suite;

namespace {

struct Interaction {
  std::string PreEval; ///< user action (e.g. switching the interpolation)
  double SunX, SunY;
};

std::vector<Interaction> session(int K) {
  std::vector<Interaction> S;
  for (int I = 0; I < K; ++I) {
    Interaction A;
    A.SunX = 0.3 + 0.02 * (I % 7);
    A.SunY = 0.5 - 0.015 * (I % 5);
    // The user flips the interpolation selector a third and two thirds
    // into the session (the deopt-triggering events of the paper).
    if (I == K / 3)
      A.PreEval = "interp <- interp_nearest";
    else if (I == 2 * K / 3)
      A.PreEval = "interp <- interp_bilinear";
    S.push_back(A);
  }
  return S;
}

struct Times {
  std::vector<double> Cast, Render;
};

Times runMode(TierStrategy S, long N, int K, VmStats &Out) {
  const Program *P = byName("raytrace");
  Vm V(benchConfig(S));
  V.eval(P->Setup);
  V.eval("hm <- make_heightmap(" + std::to_string(N) + "L)");
  V.eval("interp <- interp_bilinear");
  resetStats();
  Times T;
  for (const Interaction &A : session(K)) {
    if (!A.PreEval.empty())
      V.eval(A.PreEval);
    T.Cast.push_back(timeOnce(
        V, "cast_rays(hm, " + std::to_string(N) + "L, interp, " +
               std::to_string(A.SunX) + ", " + std::to_string(A.SunY) +
               ")"));
    T.Render.push_back(
        timeOnce(V, "render_image(hm, " + std::to_string(N) + "L)"));
  }
  Out = stats();
  return T;
}

} // namespace

int main(int Argc, char **Argv) {
  benchObsInit(Argc, Argv);
  long N = argLong(Argc, Argv, "--n", 28);
  int K = static_cast<int>(argLong(Argc, Argv, "--interactions", 40));

  BenchReport R;
  R.Name = "fig08_volcano";
  R.Config =
      "n=" + std::to_string(N) + " interactions=" + std::to_string(K);

  VmStats NormalStats, DlStats;
  Times Normal = runMode(TierStrategy::Normal, N, K, NormalStats);
  R.add("normal/cast", Normal.Cast, NormalStats);
  R.add("normal/render", Normal.Render, NormalStats);
  Times Dl = runMode(TierStrategy::Deoptless, N, K, DlStats);
  R.add("deoptless/cast", Dl.Cast, DlStats);
  R.add("deoptless/render", Dl.Render, DlStats);

  printf("# Fig. 8 — volcano app interactive session (%d interactions, "
         "%ldx%ld height map)\n",
         K, N, N);
  printf("# deoptless speedup per interaction (interpolation switches at "
         "interactions %d and %d)\n",
         K / 3 + 1, 2 * K / 3 + 1);
  printf("%-12s %12s %12s\n", "interaction", "cast_rays", "ggplot");
  for (int I = 0; I < K; ++I)
    printf("%-12d %11.2fx %11.2fx\n", I + 1,
           Normal.Cast[I] / Dl.Cast[I], Normal.Render[I] / Dl.Render[I]);

  std::vector<double> CastSp, RenderSp;
  for (int I = 0; I < K; ++I) {
    CastSp.push_back(Normal.Cast[I] / Dl.Cast[I]);
    RenderSp.push_back(Normal.Render[I] / Dl.Render[I]);
  }
  printf("\n# geomean speedups: cast_rays %.2fx, ggplot %.2fx (paper: up "
         "to 2x on interpolation switches, ~2.5x steady on rendering)\n",
         geomean(CastSp), geomean(RenderSp));
  R.headline("speedup_cast", geomean(CastSp));
  R.headline("speedup_render", geomean(RenderSp));
  emitBenchArtifacts(R, Argc, Argv);
  return 0;
}
